// Package ssp implements stub-scion pairs (SSPs), the bookkeeping that
// isolates each bunch so it can be collected independently (§3 of the
// paper).
//
// Two kinds of SSP exist:
//
//   - An inter-bunch SSP describes a reference that crosses bunch
//     boundaries. The stub lives in the source bunch on the node where the
//     reference was created; the scion lives in the target bunch and acts as
//     a GC root there. A single inter-bunch SSP keeps the target alive in
//     the whole system even when the source object is cached on several
//     nodes (§3.1).
//
//   - An intra-bunch SSP records a dependency between two copies of the same
//     bunch: when the ownership of an object moves away from a node that
//     holds inter-bunch stubs created there, the intra-bunch SSP is the
//     forwarding link from the new owner (stub) back to the old owner
//     (scion), preserving the object's replica — and with it the inter-bunch
//     stubs — at the old owner (§3.1, Figure 1). It points opposite to the
//     corresponding ownerPtr.
//
// Unlike RPC-system SSPs, these perform no indirection and no marshaling;
// they are auxiliary tables describing relevant references (§3.1).
//
// Every scion carries a creation generation (CreatedGen): the table
// generation of the first bunch-collector table at the stub node that will
// list the matching stub. The scion cleaner only trusts a table's absence
// of a stub when the table's generation has reached the scion's creation
// generation, which resolves the race between scion-messages and table
// messages that the paper defers to Ferreira[9].
package ssp

import (
	"cmp"
	"fmt"
	"slices"

	"bmx/internal/addr"
)

// InterStub describes one outgoing cross-bunch reference held in the source
// bunch at the node where the reference was created (§3.2).
type InterStub struct {
	SrcOID      addr.OID     // object containing the cross-bunch reference
	SrcBunch    addr.BunchID // bunch of the source object
	TargetOID   addr.OID     // referenced object in another bunch
	TargetBunch addr.BunchID // bunch of the target object
	ScionNode   addr.NodeID  // node holding the matching scion
}

// Key identifies the stub within its bunch's table.
func (s InterStub) Key() InterStubKey { return InterStubKey{s.SrcOID, s.TargetOID} }

func (s InterStub) String() string {
	return fmt.Sprintf("stub(%v@%v -> %v@%v, scion at %v)",
		s.SrcOID, s.SrcBunch, s.TargetOID, s.TargetBunch, s.ScionNode)
}

// InterStubKey identifies an inter-bunch stub: one stub per (source object,
// target object) pair, regardless of how many fields reference the target.
type InterStubKey struct {
	SrcOID    addr.OID
	TargetOID addr.OID
}

// InterScion describes one incoming cross-bunch reference; it is a root of
// the target bunch's collector.
type InterScion struct {
	TargetOID   addr.OID
	TargetBunch addr.BunchID
	SrcOID      addr.OID
	SrcBunch    addr.BunchID
	SrcNode     addr.NodeID // node holding the matching stub
	CreatedGen  uint64      // stub node's table generation that first lists the stub
}

// Key identifies the scion within its bunch's table.
func (s InterScion) Key() InterScionKey {
	return InterScionKey{s.TargetOID, s.SrcOID, s.SrcNode}
}

func (s InterScion) String() string {
	return fmt.Sprintf("scion(%v@%v <- %v@%v at %v, gen %d)",
		s.TargetOID, s.TargetBunch, s.SrcOID, s.SrcBunch, s.SrcNode, s.CreatedGen)
}

// InterScionKey identifies an inter-bunch scion.
type InterScionKey struct {
	TargetOID addr.OID
	SrcOID    addr.OID
	SrcNode   addr.NodeID
}

// IntraStub lives at the current (or a later) owner of an object and keeps
// the object's replica alive at a previous owner that still holds
// inter-bunch stubs for it (§3.1).
type IntraStub struct {
	OID      addr.OID
	Bunch    addr.BunchID
	OldOwner addr.NodeID // node holding the matching intra-bunch scion
}

// Key identifies the intra-bunch stub.
func (s IntraStub) Key() IntraStubKey { return IntraStubKey{s.OID, s.OldOwner} }

func (s IntraStub) String() string {
	return fmt.Sprintf("intra-stub(%v@%v -> old owner %v)", s.OID, s.Bunch, s.OldOwner)
}

// IntraStubKey identifies an intra-bunch stub.
type IntraStubKey struct {
	OID      addr.OID
	OldOwner addr.NodeID
}

// IntraScion lives at a previous owner of an object; as long as it exists,
// the object's local replica is a GC root there (so the inter-bunch stubs
// allocated at that node stay meaningful).
type IntraScion struct {
	OID        addr.OID
	Bunch      addr.BunchID
	NewOwner   addr.NodeID // node holding the matching intra-bunch stub
	CreatedGen uint64
}

// Key identifies the intra-bunch scion.
func (s IntraScion) Key() IntraScionKey { return IntraScionKey{s.OID, s.NewOwner} }

func (s IntraScion) String() string {
	return fmt.Sprintf("intra-scion(%v@%v <- new owner %v, gen %d)",
		s.OID, s.Bunch, s.NewOwner, s.CreatedGen)
}

// IntraScionKey identifies an intra-bunch scion.
type IntraScionKey struct {
	OID      addr.OID
	NewOwner addr.NodeID
}

// Table holds the SSP state of one bunch replica at one node: the stub table
// (outgoing links) and the scion table (incoming references), for both SSP
// kinds (§3).
type Table struct {
	Bunch       addr.BunchID
	InterStubs  map[InterStubKey]InterStub
	IntraStubs  map[IntraStubKey]IntraStub
	InterScions map[InterScionKey]InterScion
	IntraScions map[IntraScionKey]IntraScion
}

// NewTable returns an empty SSP table for bunch b.
func NewTable(b addr.BunchID) *Table {
	return &Table{
		Bunch:       b,
		InterStubs:  make(map[InterStubKey]InterStub),
		IntraStubs:  make(map[IntraStubKey]IntraStub),
		InterScions: make(map[InterScionKey]InterScion),
		IntraScions: make(map[IntraScionKey]IntraScion),
	}
}

// AddInterStub inserts (or overwrites) an inter-bunch stub.
func (t *Table) AddInterStub(s InterStub) { t.InterStubs[s.Key()] = s }

// AddIntraStub inserts (or overwrites) an intra-bunch stub.
func (t *Table) AddIntraStub(s IntraStub) { t.IntraStubs[s.Key()] = s }

// AddInterScion inserts an inter-bunch scion unless a matching one already
// exists (scion creation is idempotent so scion-messages may be re-sent).
func (t *Table) AddInterScion(s InterScion) {
	if _, ok := t.InterScions[s.Key()]; !ok {
		t.InterScions[s.Key()] = s
	}
}

// AddIntraScion inserts an intra-bunch scion unless a matching one exists.
func (t *Table) AddIntraScion(s IntraScion) {
	if _, ok := t.IntraScions[s.Key()]; !ok {
		t.IntraScions[s.Key()] = s
	}
}

// InterStubList returns the inter-bunch stubs in deterministic order.
func (t *Table) InterStubList() []InterStub {
	out := make([]InterStub, 0, len(t.InterStubs))
	for _, s := range t.InterStubs {
		out = append(out, s)
	}
	slices.SortFunc(out, func(a, b InterStub) int {
		if c := cmp.Compare(a.SrcOID, b.SrcOID); c != 0 {
			return c
		}
		return cmp.Compare(a.TargetOID, b.TargetOID)
	})
	return out
}

// IntraStubList returns the intra-bunch stubs in deterministic order.
func (t *Table) IntraStubList() []IntraStub {
	out := make([]IntraStub, 0, len(t.IntraStubs))
	for _, s := range t.IntraStubs {
		out = append(out, s)
	}
	slices.SortFunc(out, func(a, b IntraStub) int {
		if c := cmp.Compare(a.OID, b.OID); c != 0 {
			return c
		}
		return cmp.Compare(a.OldOwner, b.OldOwner)
	})
	return out
}

// InterScionList returns the inter-bunch scions in deterministic order.
func (t *Table) InterScionList() []InterScion {
	out := make([]InterScion, 0, len(t.InterScions))
	for _, s := range t.InterScions {
		out = append(out, s)
	}
	slices.SortFunc(out, func(a, b InterScion) int {
		if c := cmp.Compare(a.TargetOID, b.TargetOID); c != 0 {
			return c
		}
		if c := cmp.Compare(a.SrcOID, b.SrcOID); c != 0 {
			return c
		}
		return cmp.Compare(a.SrcNode, b.SrcNode)
	})
	return out
}

// IntraScionList returns the intra-bunch scions in deterministic order.
func (t *Table) IntraScionList() []IntraScion {
	out := make([]IntraScion, 0, len(t.IntraScions))
	for _, s := range t.IntraScions {
		out = append(out, s)
	}
	slices.SortFunc(out, func(a, b IntraScion) int {
		if c := cmp.Compare(a.OID, b.OID); c != 0 {
			return c
		}
		return cmp.Compare(a.NewOwner, b.NewOwner)
	})
	return out
}

// ScionRootOIDs returns the set of objects kept alive by inter-bunch scions
// (strong GC roots) in this table.
func (t *Table) ScionRootOIDs() []addr.OID {
	set := make(map[addr.OID]bool)
	for _, s := range t.InterScions {
		set[s.TargetOID] = true
	}
	return sortedOIDs(set)
}

// IntraScionRootOIDs returns the set of objects kept alive by intra-bunch
// scions (weak GC roots, §6.2) in this table.
func (t *Table) IntraScionRootOIDs() []addr.OID {
	set := make(map[addr.OID]bool)
	for _, s := range t.IntraScions {
		set[s.OID] = true
	}
	return sortedOIDs(set)
}

func sortedOIDs(set map[addr.OID]bool) []addr.OID {
	out := make([]addr.OID, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	slices.Sort(out)
	return out
}

// TableMsg is the reachability message a bunch collector sends after
// rebuilding its stub table (§4.3, §6.1). It is a complete snapshot of the
// sender's stubs relevant to one destination, which makes it idempotent: in
// case of loss it can simply be re-sent, and a newer snapshot subsumes any
// lost older one. Gen orders snapshots from one sender; FIFO delivery plus
// the generation check prevent an old table from deleting a newer scion.
type TableMsg struct {
	From  addr.NodeID
	Bunch addr.BunchID
	Gen   uint64
	// InterStubs are the sender's inter-bunch stubs whose scion lives at
	// the destination.
	InterStubs []InterStub
	// IntraStubs are the sender's intra-bunch stubs whose scion lives at
	// the destination.
	IntraStubs []IntraStub
	// Exiting lists the objects of this bunch for which the sender holds a
	// live non-owned replica whose ownerPtr points at the destination
	// (§4.3: the new set of exiting ownerPtrs).
	Exiting []addr.OID
	// Derivative marks the subset of Exiting whose liveness at the sender
	// stems solely from inter-bunch scions created on the destination's own
	// behalf (SrcNode == destination). Such an entering ownerPtr is an echo
	// of the destination's own stubs: during a group collection that covers
	// those stubs, the destination may discount it as a root — the §6.2
	// replica-cycle rule extended to inter-bunch SSPs, which is what lets a
	// co-mapped cross-node cycle die (§7).
	Derivative []addr.OID
}

// WireBytes estimates the message's simulated size for accounting.
func (m TableMsg) WireBytes() int {
	const entry = 24
	return 16 + entry*(len(m.InterStubs)+len(m.IntraStubs)) + 8*len(m.Exiting) + 8*len(m.Derivative)
}

// ScionMsg asks the node mapping the target bunch to create the scion that
// matches a freshly created inter-bunch stub (§3.2).
type ScionMsg struct {
	Scion InterScion
}

// WireBytes estimates the message's simulated size for accounting.
func (m ScionMsg) WireBytes() int { return 40 }
