package ssp

import "encoding/gob"

// Wire registration of the SSP message payloads for the multi-process TCP
// transport's gob payload codec.
func init() {
	gob.Register(ScionMsg{})
	gob.Register(TableMsg{})
}
