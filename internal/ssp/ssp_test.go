package ssp

import (
	"testing"
	"testing/quick"

	"bmx/internal/addr"
)

func TestAddInterStubOverwrites(t *testing.T) {
	tb := NewTable(1)
	s := InterStub{SrcOID: 1, SrcBunch: 1, TargetOID: 2, TargetBunch: 2, ScionNode: 0}
	tb.AddInterStub(s)
	s.ScionNode = 1
	tb.AddInterStub(s)
	if len(tb.InterStubs) != 1 {
		t.Fatalf("stubs = %d, want 1 (same key)", len(tb.InterStubs))
	}
	if tb.InterStubs[s.Key()].ScionNode != 1 {
		t.Fatal("overwrite did not take")
	}
}

func TestAddInterScionIdempotent(t *testing.T) {
	tb := NewTable(2)
	s := InterScion{TargetOID: 2, TargetBunch: 2, SrcOID: 1, SrcBunch: 1, SrcNode: 0, CreatedGen: 3}
	tb.AddInterScion(s)
	dup := s
	dup.CreatedGen = 99 // a re-sent scion-message must not refresh the gen
	tb.AddInterScion(dup)
	if len(tb.InterScions) != 1 {
		t.Fatalf("scions = %d", len(tb.InterScions))
	}
	if tb.InterScions[s.Key()].CreatedGen != 3 {
		t.Fatal("duplicate scion-message overwrote the original creation gen")
	}
}

func TestAddIntraScionIdempotent(t *testing.T) {
	tb := NewTable(1)
	s := IntraScion{OID: 3, Bunch: 1, NewOwner: 0, CreatedGen: 1}
	tb.AddIntraScion(s)
	tb.AddIntraScion(IntraScion{OID: 3, Bunch: 1, NewOwner: 0, CreatedGen: 9})
	if len(tb.IntraScions) != 1 || tb.IntraScions[s.Key()].CreatedGen != 1 {
		t.Fatal("intra scion idempotence broken")
	}
}

func TestListsDeterministic(t *testing.T) {
	tb := NewTable(1)
	tb.AddInterStub(InterStub{SrcOID: 3, TargetOID: 5})
	tb.AddInterStub(InterStub{SrcOID: 1, TargetOID: 9})
	tb.AddInterStub(InterStub{SrcOID: 1, TargetOID: 2})
	l := tb.InterStubList()
	if l[0].SrcOID != 1 || l[0].TargetOID != 2 || l[2].SrcOID != 3 {
		t.Fatalf("order wrong: %v", l)
	}

	tb.AddIntraStub(IntraStub{OID: 7, OldOwner: 2})
	tb.AddIntraStub(IntraStub{OID: 7, OldOwner: 0})
	il := tb.IntraStubList()
	if il[0].OldOwner != 0 || il[1].OldOwner != 2 {
		t.Fatalf("intra order wrong: %v", il)
	}

	tb.AddInterScion(InterScion{TargetOID: 4, SrcOID: 1, SrcNode: 1})
	tb.AddInterScion(InterScion{TargetOID: 4, SrcOID: 1, SrcNode: 0})
	sl := tb.InterScionList()
	if sl[0].SrcNode != 0 || sl[1].SrcNode != 1 {
		t.Fatalf("scion order wrong: %v", sl)
	}

	tb.AddIntraScion(IntraScion{OID: 9, NewOwner: 2})
	tb.AddIntraScion(IntraScion{OID: 2, NewOwner: 1})
	isl := tb.IntraScionList()
	if isl[0].OID != 2 || isl[1].OID != 9 {
		t.Fatalf("intra scion order wrong: %v", isl)
	}
}

func TestScionRootOIDs(t *testing.T) {
	tb := NewTable(2)
	tb.AddInterScion(InterScion{TargetOID: 5, SrcOID: 1, SrcNode: 0})
	tb.AddInterScion(InterScion{TargetOID: 5, SrcOID: 2, SrcNode: 1}) // same target
	tb.AddInterScion(InterScion{TargetOID: 3, SrcOID: 9, SrcNode: 2})
	roots := tb.ScionRootOIDs()
	if len(roots) != 2 || roots[0] != 3 || roots[1] != 5 {
		t.Fatalf("roots = %v", roots)
	}
}

func TestIntraScionRootOIDs(t *testing.T) {
	tb := NewTable(1)
	tb.AddIntraScion(IntraScion{OID: 8, NewOwner: 0})
	tb.AddIntraScion(IntraScion{OID: 8, NewOwner: 1})
	tb.AddIntraScion(IntraScion{OID: 4, NewOwner: 2})
	roots := tb.IntraScionRootOIDs()
	if len(roots) != 2 || roots[0] != 4 || roots[1] != 8 {
		t.Fatalf("weak roots = %v", roots)
	}
}

func TestStringers(t *testing.T) {
	// The String forms follow the paper's labels; smoke-test they render.
	for _, s := range []string{
		InterStub{SrcOID: 3, SrcBunch: 1, TargetOID: 5, TargetBunch: 2, ScionNode: 2}.String(),
		InterScion{TargetOID: 5, TargetBunch: 2, SrcOID: 3, SrcBunch: 1, SrcNode: 1, CreatedGen: 1}.String(),
		IntraStub{OID: 3, Bunch: 1, OldOwner: 1}.String(),
		IntraScion{OID: 3, Bunch: 1, NewOwner: 0, CreatedGen: 2}.String(),
	} {
		if s == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestTableMsgWireBytes(t *testing.T) {
	m := TableMsg{
		InterStubs: []InterStub{{}, {}},
		IntraStubs: []IntraStub{{}},
		Exiting:    []addr.OID{1, 2, 3},
	}
	if m.WireBytes() != 16+24*3+8*3 {
		t.Fatalf("WireBytes = %d", m.WireBytes())
	}
	if (ScionMsg{}).WireBytes() != 40 {
		t.Fatal("ScionMsg bytes")
	}
}

func TestRootsProperty(t *testing.T) {
	// Every scion's target appears in the root set; no extras.
	f := func(targets []uint8) bool {
		tb := NewTable(1)
		want := map[addr.OID]bool{}
		for i, tg := range targets {
			o := addr.OID(tg%16 + 1)
			tb.AddInterScion(InterScion{TargetOID: o, SrcOID: addr.OID(i + 100), SrcNode: addr.NodeID(i % 3)})
			want[o] = true
		}
		roots := tb.ScionRootOIDs()
		if len(roots) != len(want) {
			return false
		}
		for _, o := range roots {
			if !want[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
