package bmx_test

// Executable reproductions of the paper's four figures (F1-F4 in
// DESIGN.md). Each test constructs exactly the configuration the figure
// shows, drives it through the real protocol stack, and asserts every state
// the figure and its caption describe: token letters (r/w/o/i), stub and
// scion tables, ownerPtr direction, forwarding pointers, and the staged
// deletion chain of §6.2.

import (
	"testing"

	"bmx"
)

// figure1 builds the Figure 1 configuration:
//
//	B1 mapped on N1 and N2, B2 mapped only on N3.
//	O3 (in B1) references O5 (in B2); the reference was created at N2, so
//	the single inter-bunch stub lives at N2 and its scion at N3.
//	O3's write token then moved from N2 to N1, creating the intra-bunch
//	SSP: stub at N1 (new owner), scion at N2 (old owner).
func figure1(t *testing.T) (cl *bmx.Cluster, b1, b2 bmx.BunchID, o1, o3, o5 bmx.Ref) {
	t.Helper()
	cl = bmx.New(bmx.Config{Nodes: 3, SegWords: 64, Seed: 1})
	n1, n2, n3 := cl.Node(0), cl.Node(1), cl.Node(2)

	b1 = n1.NewBunch()
	b2 = n3.NewBunch()
	o1 = n1.MustAlloc(b1, 2)
	o3 = n1.MustAlloc(b1, 2)
	o5 = n3.MustAlloc(b2, 1)
	n1.AddRoot(o1)
	n3.AddRoot(o5)
	if err := n1.WriteRef(o1, 0, o3); err != nil {
		t.Fatal(err)
	}

	// B1 is mapped on N2; the O3->O5 reference is created at N2.
	if err := n2.MapBunch(b1); err != nil {
		t.Fatal(err)
	}
	if err := n2.AcquireWrite(o3); err != nil {
		t.Fatal(err)
	}
	if err := n2.AcquireRead(o5); err != nil {
		t.Fatal(err)
	}
	if err := n2.WriteRef(o3, 0, o5); err != nil {
		t.Fatal(err)
	}

	// O3's write token goes from N2 to N1.
	if err := n1.AcquireWrite(o3); err != nil {
		t.Fatal(err)
	}
	return cl, b1, b2, o1, o3, o5
}

func TestFigure1TokenLetters(t *testing.T) {
	cl, _, _, _, o3, o5 := figure1(t)
	n1, n2, n3 := cl.Node(0), cl.Node(1), cl.Node(2)

	// O3: N1 holds the write token and is the owner (thicker object in the
	// figure); N2's copy is inconsistent (i).
	if n1.Mode(o3) != bmx.ModeWrite || !n1.IsOwner(o3) {
		t.Fatalf("O3 at N1: mode %v owner %v, want w/o", n1.Mode(o3), n1.IsOwner(o3))
	}
	if n2.Mode(o3) != bmx.ModeInvalid || n2.IsOwner(o3) {
		t.Fatalf("O3 at N2: mode %v owner %v, want i", n2.Mode(o3), n2.IsOwner(o3))
	}
	// O5 is owned at N3 with a read copy at N2.
	if !n3.IsOwner(o5) {
		t.Fatal("O5 must be owned at N3")
	}
	if n2.Mode(o5) != bmx.ModeRead {
		t.Fatalf("O5 at N2: mode %v, want r", n2.Mode(o5))
	}
}

func TestFigure1SingleInterBunchStub(t *testing.T) {
	cl, b1, b2, _, o3, o5 := figure1(t)
	n1, n2, n3 := cl.Node(0), cl.Node(1), cl.Node(2)

	// "In spite of the fact that O3 is cached on N1 and N2, there is only
	// one inter-bunch stub due to O3->O5 that is kept at N2" (§3.1).
	stubsN2 := n2.Collector().Replica(b1).Table.InterStubList()
	if len(stubsN2) != 1 {
		t.Fatalf("N2 holds %d inter-bunch stubs, want 1", len(stubsN2))
	}
	s := stubsN2[0]
	if s.SrcOID != o3.OID || s.TargetOID != o5.OID || s.ScionNode != n3.ID() {
		t.Fatalf("stub = %+v", s)
	}
	if got := n1.Collector().Replica(b1).Table.InterStubList(); len(got) != 0 {
		t.Fatalf("inter-bunch stub replicated at N1: %v", got)
	}
	// The matching scion is at N3, in B2's table.
	scions := n3.Collector().Replica(b2).Table.InterScionList()
	if len(scions) != 1 || scions[0].TargetOID != o5.OID || scions[0].SrcNode != n2.ID() {
		t.Fatalf("scions at N3 = %+v", scions)
	}
}

func TestFigure1IntraBunchSSPDirection(t *testing.T) {
	cl, b1, _, _, o3, _ := figure1(t)
	n1, n2 := cl.Node(0), cl.Node(1)

	// "When O3's write token goes from N2 ... to N1, the corresponding
	// intra-bunch SSP from N1 to N2 is created" — stub at the new owner
	// N1, scion at the old owner N2, opposite to the ownerPtr (N2 -> N1).
	intraStubs := n1.Collector().Replica(b1).Table.IntraStubList()
	if len(intraStubs) != 1 || intraStubs[0].OID != o3.OID || intraStubs[0].OldOwner != n2.ID() {
		t.Fatalf("intra stubs at N1 = %+v", intraStubs)
	}
	intraScions := n2.Collector().Replica(b1).Table.IntraScionList()
	if len(intraScions) != 1 || intraScions[0].OID != o3.OID || intraScions[0].NewOwner != n1.ID() {
		t.Fatalf("intra scions at N2 = %+v", intraScions)
	}
	// The ownerPtr at N2 points at N1 (opposite direction of the SSP).
	if got := n2.DSM().OwnerPtrOf(o3.OID); got != n1.ID() {
		t.Fatalf("ownerPtr at N2 = %v, want N1", got)
	}
}

func TestFigure1StubKeepsO3AliveAtN2(t *testing.T) {
	// "In spite of being unreachable by the mutator at N2, object O3 must
	// be kept alive at this node" — the intra-bunch scion is a (weak) root.
	cl, b1, _, _, o3, _ := figure1(t)
	n2 := cl.Node(1)
	for i := 0; i < 3; i++ {
		n2.CollectBunch(b1)
		cl.Run(0)
	}
	if _, ok := n2.Collector().Heap().Canonical(o3.OID); !ok {
		t.Fatal("O3 reclaimed at N2 while its inter-bunch stub is still needed")
	}
}

// figure2 builds the Figure 2 configuration: B1 on N1 and N2 with
// O1 -> O2 -> O3; N1 owns O1 and O3, N2 owns O2. The BGC then runs on N2.
func figure2(t *testing.T) (cl *bmx.Cluster, b bmx.BunchID, o1, o2, o3 bmx.Ref) {
	t.Helper()
	cl = bmx.New(bmx.Config{Nodes: 2, SegWords: 64, Seed: 1})
	n1, n2 := cl.Node(0), cl.Node(1)
	b = n1.NewBunch()
	o1 = n1.MustAlloc(b, 2)
	o2 = n1.MustAlloc(b, 2)
	o3 = n1.MustAlloc(b, 2)
	n1.AddRoot(o1)
	if err := n1.WriteRef(o1, 0, o2); err != nil {
		t.Fatal(err)
	}
	if err := n1.WriteRef(o2, 0, o3); err != nil {
		t.Fatal(err)
	}
	if err := n2.MapBunch(b); err != nil {
		t.Fatal(err)
	}
	n2.AddRoot(o1)
	if err := n2.AcquireWrite(o2); err != nil {
		t.Fatal(err)
	}
	return cl, b, o1, o2, o3
}

func TestFigure2BGCCopiesOnlyO2(t *testing.T) {
	cl, b, _, _, _ := figure2(t)
	n2 := cl.Node(1)
	st := n2.CollectBunch(b)
	if st.Copied != 1 {
		t.Fatalf("BGC at N2 copied %d objects, want 1 (only locally-owned O2)", st.Copied)
	}
	if st.LiveStrong != 3 {
		t.Fatalf("live = %d, want O1, O2, O3", st.LiveStrong)
	}
	if st.Dead != 0 {
		t.Fatalf("dead = %d, want 0", st.Dead)
	}
}

func TestFigure2ForwardingPointerAndLocalUpdate(t *testing.T) {
	cl, b, o1, o2, _ := figure2(t)
	n1, n2 := cl.Node(0), cl.Node(1)
	heap2 := n2.Collector().Heap()
	oldAddr, _ := heap2.Canonical(o2.OID)

	n2.CollectBunch(b)

	// A forwarding pointer was written into O2's from-space header at N2.
	newAddr, _ := heap2.Canonical(o2.OID)
	if newAddr == oldAddr {
		t.Fatal("O2 did not move at N2")
	}
	if !heap2.Forwarded(oldAddr) || heap2.Fwd(oldAddr) != newAddr {
		t.Fatal("no forwarding pointer left in O2's old header")
	}
	// N2's copy of O1 now points at the new O2 ("the update of pointers to
	// O2"); this happened WITHOUT acquiring O1's write token.
	a1, _ := heap2.Canonical(o1.OID)
	if got := bmx.Addr(heap2.GetField(a1, 0)); got != newAddr {
		t.Fatalf("O1.0 at N2 = %v, want updated %v", got, newAddr)
	}
	// N1 has not been informed: its canonical O2 address is still the old
	// one — "Node N1 has not yet been informed of O2's new address".
	heap1 := n1.Collector().Heap()
	if got, _ := heap1.Canonical(o2.OID); got != oldAddr {
		t.Fatalf("O2 at N1 = %v, want still %v", got, oldAddr)
	}
	// Yet the mutator at N1 continues to work correctly.
	if err := n1.AcquireRead(o1); err != nil {
		t.Fatal(err)
	}
	if r, err := n1.ReadRef(o1, 0); err != nil || !n1.SamePtr(r, o2) {
		t.Fatalf("N1 mutator broken: %v, %v", r, err)
	}
}

func TestFigure2LazyUpdateViaPiggyback(t *testing.T) {
	cl, b, _, o2, o3 := figure2(t)
	n1, n2 := cl.Node(0), cl.Node(1)
	n2.CollectBunch(b)
	newAddr, _ := n2.Collector().Heap().Canonical(o2.OID)

	// "O2's new address can be sent from N2 to N1 in a message due to the
	// consistency protocol": N1 acquires O2 (owner is N2) and receives the
	// location with the grant — with zero additional GC messages.
	gcMsgsBefore := cl.Stats().Get("msg.sent.gc")
	if err := n1.AcquireRead(o2); err != nil {
		t.Fatal(err)
	}
	if got := cl.Stats().Get("msg.sent.gc"); got != gcMsgsBefore {
		t.Fatalf("location update used %d extra GC messages, want 0", got-gcMsgsBefore)
	}
	if got, _ := n1.Collector().Heap().Canonical(o2.OID); got != newAddr {
		t.Fatalf("O2 at N1 = %v after sync, want %v", got, newAddr)
	}
	// O2's content (the reference to O3) arrived intact.
	if r, err := n1.ReadRef(o2, 0); err != nil || !n1.SamePtr(r, o3) {
		t.Fatalf("O2.0 at N1 = %v, %v", r, err)
	}
}

// figure3 builds the Figure 3 base: bunch B on N1 and N2, O1 -> O2, both
// owned at N1, with N2 holding stale read copies.
func figure3(t *testing.T) (cl *bmx.Cluster, b bmx.BunchID, o1, o2 bmx.Ref) {
	t.Helper()
	cl = bmx.New(bmx.Config{Nodes: 2, SegWords: 64, Seed: 1})
	n1, n2 := cl.Node(0), cl.Node(1)
	b = n1.NewBunch()
	o1 = n1.MustAlloc(b, 2)
	o2 = n1.MustAlloc(b, 2)
	n1.AddRoot(o1)
	if err := n1.WriteRef(o1, 0, o2); err != nil {
		t.Fatal(err)
	}
	n1.WriteWord(o2, 1, 7)
	if err := n2.MapBunch(b); err != nil {
		t.Fatal(err)
	}
	n2.AddRoot(o1)
	if err := n2.AcquireRead(o1); err != nil {
		t.Fatal(err)
	}
	if err := n2.AcquireRead(o2); err != nil {
		t.Fatal(err)
	}
	return cl, b, o1, o2
}

func TestFigure3CaseA_NoCopies(t *testing.T) {
	// Case (a): nothing was copied anywhere; the acquire needs no special
	// operation.
	cl, _, o1, _ := figure3(t)
	n2 := cl.Node(1)
	locBefore := cl.Stats().Get("core.loc.applied")
	if err := n2.AcquireWrite(o1); err != nil {
		t.Fatal(err)
	}
	if got := cl.Stats().Get("core.loc.applied"); got != locBefore {
		t.Fatalf("case (a) applied %d location updates, want 0", got-locBefore)
	}
}

func TestFigure3CaseB_AcquiredObjectCopiedAtGranter(t *testing.T) {
	// Case (b): O1 was copied to to-space at N1; its new location is
	// piggybacked on the token grant and processed before the acquire
	// returns (invariant 1).
	cl, b, o1, _ := figure3(t)
	n1, n2 := cl.Node(0), cl.Node(1)
	n1.CollectBunch(b)
	newAddr, _ := n1.Collector().Heap().Canonical(o1.OID)

	if err := n2.AcquireWrite(o1); err != nil {
		t.Fatal(err)
	}
	if got, _ := n2.Collector().Heap().Canonical(o1.OID); got != newAddr {
		t.Fatalf("O1 at N2 = %v, want granter's to-space address %v", got, newAddr)
	}
	if err := n2.WriteWord(o1, 1, 9); err != nil {
		t.Fatal(err)
	}
}

func TestFigure3CaseC_ReferencedObjectCopiedAtGranter(t *testing.T) {
	// Case (c): O2 (pointed at by O1) was copied at N1; acquiring O1 at N2
	// must also deliver O2's new location.
	cl, b, o1, o2 := figure3(t)
	n1, n2 := cl.Node(0), cl.Node(1)
	n1.CollectBunch(b)
	newO2, _ := n1.Collector().Heap().Canonical(o2.OID)

	if err := n2.AcquireWrite(o1); err != nil {
		t.Fatal(err)
	}
	if got, _ := n2.Collector().Heap().Canonical(o2.OID); got != newO2 {
		t.Fatalf("O2 at N2 = %v, want %v (invariant 1 covers referenced objects)", got, newO2)
	}
	// Following the pointer works immediately.
	r, err := n2.ReadRef(o1, 0)
	if err != nil || !n2.SamePtr(r, o2) {
		t.Fatalf("O1.0 at N2 = %v, %v", r, err)
	}
}

func TestFigure3CaseD_ReferencedObjectCopiedAtAcquirer(t *testing.T) {
	// Case (d): O2 was copied at N2 itself (N2 owns O2 and collected)
	// before the write-token acquire of O1. When the valid copy of O1
	// arrives, its references to forwarding pointers in from-space are
	// updated to point directly into to-space.
	cl, b, o1, o2 := figure3(t)
	n2 := cl.Node(1)
	if err := n2.AcquireWrite(o2); err != nil { // N2 becomes O2's owner
		t.Fatal(err)
	}
	n2.CollectBunch(b) // copies O2 at N2
	newO2, _ := n2.Collector().Heap().Canonical(o2.OID)

	if err := n2.AcquireWrite(o1); err != nil { // token + valid O1 from N1
		t.Fatal(err)
	}
	heap2 := n2.Collector().Heap()
	a1, _ := heap2.Canonical(o1.OID)
	raw := bmx.Addr(heap2.GetField(a1, 0))
	if heap2.Resolve(raw) != newO2 {
		t.Fatalf("O1.0 at N2 resolves to %v, want N2's to-space copy %v", heap2.Resolve(raw), newO2)
	}
	if r, err := n2.ReadRef(o1, 0); err != nil || !n2.SamePtr(r, o2) {
		t.Fatalf("read through updated ref: %v, %v", r, err)
	}
	if v, _ := n2.ReadWord(o2, 1); v != 7 {
		t.Fatalf("O2 data after case (d) = %d, want 7", v)
	}
}

// TestFigure4DeletionChain reproduces Figure 4 and the §6.2 walk-through
// step by step: O1 cached on N1, N2 and N3; N2 is the owner; N3 (an old
// owner holding an inter-bunch stub for O1) keeps O1 only via the
// intra-bunch scion; N1 holds the single mutator reference.
func TestFigure4DeletionChain(t *testing.T) {
	cl := bmx.New(bmx.Config{Nodes: 3, SegWords: 64, Seed: 1})
	n1, n2, n3 := cl.Node(0), cl.Node(1), cl.Node(2)

	bOther := n1.NewBunch()
	other := n1.MustAlloc(bOther, 1)
	n1.AddRoot(other)

	b := n3.NewBunch()
	o1 := n3.MustAlloc(b, 1)
	// N3 creates an inter-bunch reference O1 -> other, so N3 holds an
	// inter-bunch stub for O1.
	if err := n3.AcquireRead(other); err != nil {
		t.Fatal(err)
	}
	if err := n3.WriteRef(o1, 0, other); err != nil {
		t.Fatal(err)
	}
	// Ownership moves N3 -> N2 (intra-bunch SSP: stub at N2, scion at N3).
	if err := n2.MapBunch(b); err != nil {
		t.Fatal(err)
	}
	if err := n2.AcquireWrite(o1); err != nil {
		t.Fatal(err)
	}
	// N1 holds the only mutator reference, with a read token from N2.
	if err := n1.MapBunch(b); err != nil {
		t.Fatal(err)
	}
	if err := n1.AcquireRead(o1); err != nil {
		t.Fatal(err)
	}
	n1.AddRoot(o1)

	// Step 1 (§6.2): BGC at N3. The new exiting list does not include the
	// ownerPtr N3 -> N2 (O1 is reachable at N3 only via the intra-bunch
	// scion), which breaks the replica cycle. O1 stays alive at N3.
	n3.CollectBunch(b)
	cl.Run(0)
	if _, ok := n3.Collector().Heap().Canonical(o1.OID); !ok {
		t.Fatal("O1 reclaimed at N3 while the intra-bunch scion protects it")
	}
	// The cleaner at N2 dropped the entering ownerPtr from N3...
	entering := n2.DSM().EnteringOf(o1.OID)
	for _, e := range entering {
		if e == n3.ID() {
			t.Fatalf("entering ownerPtr from N3 not removed at N2: %v", entering)
		}
	}
	// ...but O1 remains alive at N2 thanks to the entering ownerPtr that
	// originates at N1.
	n2.CollectBunch(b)
	cl.Run(0)
	if _, ok := n2.Collector().Heap().Canonical(o1.OID); !ok {
		t.Fatal("O1 reclaimed at N2 while N1 still references it")
	}

	// Step 2: the reference is deleted from N1's root and N1 collects:
	// O1 reclaimed at N1, and N1's exiting ownerPtr disappears.
	n1.RemoveRoot(o1)
	n1.CollectBunch(b)
	cl.Run(0)
	if _, ok := n1.Collector().Heap().Canonical(o1.OID); ok {
		t.Fatal("O1 still present at N1")
	}

	// Step 3: N2 collects; O1 is no longer reachable there, so the
	// intra-bunch stub to N3 drops out of the new table.
	n2.CollectBunch(b)
	cl.Run(0)
	if _, ok := n2.Collector().Heap().Canonical(o1.OID); ok {
		t.Fatal("O1 still present at N2 after N1's table arrived")
	}
	if got := n2.Collector().Replica(b).Table.IntraStubList(); len(got) != 0 {
		t.Fatalf("intra-bunch stub survived at N2: %v", got)
	}

	// Step 4: the cleaner at N3 deletes the intra-bunch scion, and N3's
	// next BGC reclaims O1 there as well.
	if got := n3.Collector().Replica(b).Table.IntraScionList(); len(got) != 0 {
		t.Fatalf("intra-bunch scion survived at N3: %v", got)
	}
	n3.CollectBunch(b)
	cl.Run(0)
	if _, ok := n3.Collector().Heap().Canonical(o1.OID); ok {
		t.Fatal("O1 still present at N3 at the end of the deletion chain")
	}
}
