package bmx_test

import (
	"encoding/json"
	"os"
	"testing"

	"bmx/internal/obs"
)

// readBench loads a committed benchmark envelope from the repo root.
func readBench(t *testing.T, path string) obs.BenchSummary {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("committed envelope missing (run `make bench-json-sim`): %v", err)
	}
	var b obs.BenchSummary
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return b
}

// TestMigrationBenchBeatsBaseline pins the PR's A/B claim on the committed
// artifacts: on the identical zipf workload and seed, heat-driven ownership
// migration plus the remote-acquire fast path must strictly lower the
// remote-access ratio and the owner-chain hops paid per acquire, without
// costing messages per mutator op. The envelopes are regenerated together
// by `make bench-json-sim` (deterministic simnet), so a protocol change
// that erodes the win fails here before the CI gate sees it.
func TestMigrationBenchBeatsBaseline(t *testing.T) {
	base := readBench(t, "BENCH_9_zipf.json")
	mig := readBench(t, "BENCH_10_zipf_migrate.json")

	if mig.RemoteAccessRatio >= base.RemoteAccessRatio {
		t.Errorf("remote access ratio: migrate %.4f, baseline %.4f; migration must strictly lower it",
			mig.RemoteAccessRatio, base.RemoteAccessRatio)
	}
	bh, ok1 := base.Series["dsm.acquire.hops"]
	mh, ok2 := mig.Series["dsm.acquire.hops"]
	if !ok1 || !ok2 {
		t.Fatal("dsm.acquire.hops series missing from an envelope")
	}
	if mh.Final.Sum >= bh.Final.Sum {
		t.Errorf("owner-chain hops: migrate paid %d, baseline %d; migration must strictly lower them",
			mh.Final.Sum, bh.Final.Sum)
	}
	if mig.MsgsPerMutatorOp > base.MsgsPerMutatorOp {
		t.Errorf("msgs per mutator op: migrate %.4f, baseline %.4f; the optimisation may not cost messages",
			mig.MsgsPerMutatorOp, base.MsgsPerMutatorOp)
	}
}

// TestCoalesceBenchCostsNothing pins the coalescing-only envelope: batching
// invariant-2 location updates must not change the workload's consistency
// figures — same remote-access ratio, no extra messages per op.
func TestCoalesceBenchCostsNothing(t *testing.T) {
	base := readBench(t, "BENCH_9_zipf.json")
	coal := readBench(t, "BENCH_10_coalesce.json")
	if coal.RemoteAccessRatio != base.RemoteAccessRatio {
		t.Errorf("remote access ratio moved under coalescing: %.4f vs %.4f",
			coal.RemoteAccessRatio, base.RemoteAccessRatio)
	}
	if coal.MsgsPerMutatorOp > base.MsgsPerMutatorOp {
		t.Errorf("msgs per mutator op rose under coalescing: %.4f vs %.4f",
			coal.MsgsPerMutatorOp, base.MsgsPerMutatorOp)
	}
}
