package bmx_test

import (
	"bytes"
	"testing"

	"bmx"
	"bmx/internal/addr"
	"bmx/internal/obs"
)

// TestBiographyReconstructsOwnershipTransfers is the analyzer acceptance
// test: a scripted ownership-transfer scenario is run with tracing on, the
// event window is dumped to NDJSON (the bmxstat input format), parsed back,
// and the reconstructed biography must name the owner sequence exactly —
// proving the offline path (file → events → biography) agrees with what the
// cluster actually did.
func TestBiographyReconstructsOwnershipTransfers(t *testing.T) {
	cl := bmx.New(bmx.Config{Nodes: 3, SegWords: 256, Seed: 1, SendLatency: 1, CallLatency: 1})
	cl.EnableTracing()
	n1, n2, n3 := cl.Node(0), cl.Node(1), cl.Node(2)

	b := n1.NewBunch()
	o := n1.MustAlloc(b, 2)
	n1.AddRoot(o)
	if err := n1.WriteWord(o, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Scripted transfers: N1 (creator) -> N2 -> N3 -> back to N1, with a
	// read copy at N2 in between (reads must NOT appear as ownership).
	if err := n2.AcquireWrite(o); err != nil {
		t.Fatal(err)
	}
	n2.Release(o)
	if err := n3.AcquireWrite(o); err != nil {
		t.Fatal(err)
	}
	n3.Release(o)
	if err := n2.AcquireRead(o); err != nil {
		t.Fatal(err)
	}
	n2.Release(o)
	if err := n1.AcquireWrite(o); err != nil {
		t.Fatal(err)
	}
	n1.Release(o)
	cl.Run(0)

	// Offline round trip: dump the window as NDJSON, read it back.
	var buf bytes.Buffer
	if err := obs.DumpJSON(&buf, cl.Observer().Events()); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadEventsNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	bio := obs.BiographyOf(evs, o.OID)
	if len(bio.Entries) == 0 {
		t.Fatal("biography empty after round trip")
	}
	want := []addr.NodeID{n2.ID(), n3.ID(), n1.ID()}
	if len(bio.Owners) != len(want) {
		t.Fatalf("ownership timeline = %v, want %v", bio.Owners, want)
	}
	for i := range want {
		if bio.Owners[i] != want[i] {
			t.Fatalf("ownership timeline = %v, want %v", bio.Owners, want)
		}
	}
	if len(bio.Cycle) != 0 {
		t.Fatalf("healthy run flagged a routing cycle: %v", bio.Cycle)
	}
	// The read acquire is in the story but not in the ownership timeline.
	sawRead := false
	for _, en := range bio.Entries {
		if en.Event.Kind == obs.KAcquireGrant && en.Event.A == 1 {
			sawRead = true
		}
	}
	if !sawRead {
		t.Fatal("read grant missing from the biography")
	}
}
