package bmx_test

import (
	"fmt"

	"bmx"
)

// The canonical two-node session: allocate, share through tokens, collect
// without touching the consistency protocol.
func Example() {
	cl := bmx.New(bmx.Config{Nodes: 2})
	n1, n2 := cl.Node(0), cl.Node(1)

	b := n1.NewBunch()
	obj := n1.MustAlloc(b, 2)
	n1.AddRoot(obj)
	n1.WriteWord(obj, 0, 42)

	n2.AcquireRead(obj)
	v, _ := n2.ReadWord(obj, 0)
	fmt.Println("shared value:", v)

	st := n1.CollectBunch(b)
	cl.Run(0)
	fmt.Println("collected, copied:", st.Copied)
	fmt.Println("GC token acquires:",
		cl.Stats().Get("dsm.acquire.r.gc")+cl.Stats().Get("dsm.acquire.w.gc"))
	// Output:
	// shared value: 42
	// collected, copied: 1
	// GC token acquires: 0
}

// Distributed garbage: a cross-bunch, cross-node reference is protected by
// a stub-scion pair; cutting it lets the scion cleaner reclaim the target
// through idempotent background tables.
func ExampleNode_CollectBunch() {
	cl := bmx.New(bmx.Config{Nodes: 2, Seed: 1})
	n1, n2 := cl.Node(0), cl.Node(1)
	b1, b2 := n1.NewBunch(), n2.NewBunch()

	tgt := n2.MustAlloc(b2, 1)
	src := n1.MustAlloc(b1, 1)
	n1.AddRoot(src)
	n1.AcquireRead(tgt)
	n1.WriteRef(src, 0, tgt) // the write barrier builds the SSP

	n1.AcquireWrite(src)
	n1.WriteRef(src, 0, bmx.Nil) // cut

	for round := 0; round < 3; round++ {
		for _, nd := range []*bmx.Node{n1, n2} {
			for _, b := range nd.Collector().MappedBunches() {
				nd.CollectBunch(b)
			}
		}
		cl.Run(0)
	}
	_, present := n2.Collector().Heap().Canonical(tgt.OID)
	fmt.Println("target still present:", present)
	// Output:
	// target still present: false
}

// Transactional sections buffer writes until commit; aborts vanish.
func ExampleNode_Begin() {
	cl := bmx.New(bmx.Config{Nodes: 1})
	n := cl.Node(0)
	b := n.NewBunch()
	acct := n.MustAlloc(b, 1)
	n.AddRoot(acct)
	n.WriteWord(acct, 0, 100)

	tx := n.Begin()
	tx.WriteWord(acct, 0, 150)
	balance, _ := tx.ReadWord(acct, 0) // read-your-writes
	fmt.Println("inside tx:", balance)
	tx.Abort()

	v, _ := n.ReadWord(acct, 0)
	fmt.Println("after abort:", v)
	// Output:
	// inside tx: 150
	// after abort: 100
}

// The group collector reclaims inter-bunch cycles that per-bunch
// collections must conservatively retain.
func ExampleNode_CollectGroup() {
	cl := bmx.New(bmx.Config{Nodes: 1})
	n := cl.Node(0)
	b1, b2 := n.NewBunch(), n.NewBunch()
	x := n.MustAlloc(b1, 1)
	y := n.MustAlloc(b2, 1)
	n.WriteRef(x, 0, y)
	n.WriteRef(y, 0, x) // a dead 2-cycle across bunches

	n.CollectBunch(b1)
	n.CollectBunch(b2)
	cl.Run(0)
	_, survived := n.Collector().Heap().Canonical(x.OID)
	fmt.Println("after BGCs, cycle present:", survived)

	st := n.CollectGroup(nil)
	fmt.Println("GGC reclaimed:", st.Dead)
	// Output:
	// after BGCs, cycle present: true
	// GGC reclaimed: 2
}
