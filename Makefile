# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race chaos chaos-crash bench bench-json bench-json-sim bench-json-tcp bench-ref bench-gate experiments figures examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Seeded chaos soak: duplication + delay + partitions over the full test
# suite's fault tests, plus a fixed-seed bmxd storm.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Dup|Delay|Partition|LossGap' ./internal/...
	$(GO) run ./cmd/bmxd -chaos -nodes 3 -chaos-steps 400 -seed 1 -loss 0.05 -dup 0.15 -delay 0.2
	$(GO) run ./cmd/bmxd -chaos -nodes 4 -chaos-steps 300 -seed 42 -dup 0.25 -delay 0.3 -partition-every 50 -partition-for 15

# Crash-recovery chaos: seeded kill/restart schedules across both commit
# disciplines and every store backend, plus the Go crash suite under the
# race detector. Each run kills nodes mid-collection on both sides of the
# flip's log force and audits persistence-by-reachability after restart.
chaos-crash:
	$(GO) test -race -run 'Crash|KillRestart|GroupCommit' ./internal/cluster/ ./internal/store/
	$(GO) run ./cmd/bmxd -chaos-crash -nodes 3 -chaos-steps 600 -seed 1 -sync pertx
	$(GO) run ./cmd/bmxd -chaos-crash -nodes 3 -chaos-steps 600 -seed 2 -sync flip
	$(GO) run ./cmd/bmxd -chaos-crash -nodes 3 -chaos-steps 400 -seed 3 -store flatfs -sync flip
	$(GO) run ./cmd/bmxd -chaos-crash -nodes 3 -chaos-steps 400 -seed 4 -store lsm -sync flip

bench:
	$(GO) test -bench=. -benchmem -run xxx .

# Representative workload runs with the time-series sampler on; emit the
# machine-readable benchmark summaries (quantile trajectories, msgs/op, GC
# copy and scan volume) that CI uploads as artifacts and A/B-diffs with
# `bmxstat -bench`. BENCH_5 is the same workload collected by the parallel
# GC worker pool. The BENCH_6 family is the same workload on a persistent
# store: per-transaction commit vs group commit (syncs-per-flip is the
# figure that moves), then the flatfs and LSM backends under group commit.
# BENCH_7 runs the same tree workload once on the simulated network and
# once as a real 3-process TCP cluster over loopback, and A/B-diffs them:
# the paper's accounting figures (msgs/op, piggyback volume, zero collector
# acquires) must survive the move to real sockets. The BENCH_9 pair runs the
# skewed-locality workloads — zipf (hot-object head) and churn-heavy
# (allocation/death storm) — whose remote-access ratio and owner-mismatch
# count the regression gate watches. The BENCH_10 pair re-runs the zipf
# workload with the locality optimisations on — heat-driven ownership
# migration plus the remote-acquire fast path (coalesced location updates,
# ownerPtr hint cache) — and with coalescing alone; the A/B claim against
# BENCH_9_zipf (lower remote-access ratio and owner-chain hops, msgs/op no
# worse) is pinned by TestMigrationBenchBeatsBaseline.
bench-json: bench-json-sim bench-json-tcp
	$(GO) run ./cmd/bmxstat -bench BENCH_7_simnet.json -diff BENCH_7_tcp.json

bench-json-sim:
	$(GO) run ./cmd/bmxd -nodes 4 -objects 200 -rounds 8 -workload tree -seed 5 -bunches 4 -bench-json BENCH_4.json
	$(GO) run ./cmd/bmxd -nodes 4 -objects 200 -rounds 8 -workload tree -seed 5 -bunches 4 -gc-workers 4 -bench-json BENCH_5.json
	$(GO) run ./cmd/bmxd -nodes 4 -objects 200 -rounds 8 -workload tree -seed 5 -bunches 4 -store mem -sync pertx -bench-json BENCH_6_pertx.json
	$(GO) run ./cmd/bmxd -nodes 4 -objects 200 -rounds 8 -workload tree -seed 5 -bunches 4 -store mem -sync flip -bench-json BENCH_6_flip.json
	$(GO) run ./cmd/bmxd -nodes 4 -objects 200 -rounds 8 -workload tree -seed 5 -bunches 4 -store flatfs -sync flip -bench-json BENCH_6_flatfs.json
	$(GO) run ./cmd/bmxd -nodes 4 -objects 200 -rounds 8 -workload tree -seed 5 -bunches 4 -store lsm -sync flip -bench-json BENCH_6_lsm.json
	$(GO) run ./cmd/bmxd -nodes 3 -objects 120 -rounds 8 -workload tree -seed 5 -bench-json BENCH_7_simnet.json
	$(GO) run ./cmd/bmxd -nodes 3 -objects 150 -rounds 8 -workload zipf -zipf-s 1.2 -seed 5 -bench-json BENCH_9_zipf.json
	$(GO) run ./cmd/bmxd -nodes 3 -objects 60 -rounds 8 -workload churn-heavy -seed 5 -bench-json BENCH_9_churn.json
	$(GO) run ./cmd/bmxd -nodes 3 -objects 150 -rounds 8 -workload zipf -zipf-s 1.2 -seed 5 -migrate -coalesce-loc -hint-cache -bench-json BENCH_10_zipf_migrate.json
	$(GO) run ./cmd/bmxd -nodes 3 -objects 150 -rounds 8 -workload zipf -zipf-s 1.2 -seed 5 -coalesce-loc -bench-json BENCH_10_coalesce.json

# Regenerate the committed regression-gate reference from a fresh run of
# the deterministic simnet benchmarks. Commit the result when a change
# legitimately moves the numbers.
bench-ref: bench-json-sim
	$(GO) run ./cmd/bmxstat -make-ref -bench BENCH_4.json,BENCH_5.json,BENCH_6_pertx.json,BENCH_6_flip.json,BENCH_6_flatfs.json,BENCH_6_lsm.json,BENCH_7_simnet.json,BENCH_9_zipf.json,BENCH_9_churn.json,BENCH_10_zipf_migrate.json,BENCH_10_coalesce.json > BENCH_REF.json

# Gate the current deterministic benchmarks against the committed reference;
# exits non-zero on drift beyond 25%. Same check CI runs in metrics-smoke.
bench-gate: bench-json-sim
	for b in BENCH_4 BENCH_5 BENCH_6_pertx BENCH_6_flip BENCH_6_flatfs BENCH_6_lsm BENCH_7_simnet BENCH_9_zipf BENCH_9_churn BENCH_10_zipf_migrate BENCH_10_coalesce; do \
		$(GO) run ./cmd/bmxstat -bench $$b.json -ref BENCH_REF.json -gate 25 || exit 1; \
	done

bench-json-tcp:
	$(GO) build -o ./bmxd.bench ./cmd/bmxd
	./bmxd.bench -listen 127.0.0.1:39412 -peers 127.0.0.1:39411,127.0.0.1:39413 -workload tree -objects 120 -rounds 8 -seed 5 & \
	./bmxd.bench -listen 127.0.0.1:39413 -peers 127.0.0.1:39411,127.0.0.1:39412 -workload tree -objects 120 -rounds 8 -seed 5 & \
	./bmxd.bench -listen 127.0.0.1:39411 -peers 127.0.0.1:39412,127.0.0.1:39413 -workload tree -objects 120 -rounds 8 -seed 5 -bench-json BENCH_7_tcp.json; \
	status=$$?; wait; rm -f ./bmxd.bench; exit $$status

experiments:
	$(GO) run ./cmd/bmxbench

figures:
	$(GO) run ./cmd/bmxtrace

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/webgraph
	$(GO) run ./examples/persistdb
	$(GO) run ./examples/migration
	$(GO) run ./examples/cadtool

cover:
	$(GO) test ./internal/... . -coverpkg=./internal/...,. -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
