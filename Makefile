# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race bench experiments figures examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run xxx .

experiments:
	$(GO) run ./cmd/bmxbench

figures:
	$(GO) run ./cmd/bmxtrace

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/webgraph
	$(GO) run ./examples/persistdb
	$(GO) run ./examples/migration
	$(GO) run ./examples/cadtool

cover:
	$(GO) test ./internal/... . -coverpkg=./internal/...,. -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
