package bmx_test

// Heatmap acceptance tests: the cluster-wide access-locality table driven
// through the public facade. The determinism pin freezes the heat table's
// serialization on simnet — same seed, byte-identical NDJSON — and the
// hammer runs the zipf mutators concurrently with GC workers under -race.

import (
	"bytes"
	"sync"
	"testing"

	"bmx"
	"bmx/internal/obs/heat"
	"bmx/internal/trace"
)

// driveHeatRun is one fixed-seed simnet run with heat accounting on:
// rotating mutators write a zipf-skewed head, collections run on cadence,
// and the heat table decays once per round — the bmxd driver in miniature.
func driveHeatRun(t *testing.T, seed int64) []heat.Row {
	t.Helper()
	cl := bmx.New(bmx.Config{Nodes: 3, SegWords: 256, Seed: seed, SendLatency: 1, CallLatency: 1})
	cl.EnableHeat()
	n0 := cl.Node(0)
	b := n0.NewBunch()
	g, err := trace.BuildWeb(n0, b, trace.WebConfig{Objects: 30, OutDegree: 3, Seed: seed, DeadFrac: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Share(g.Objects, cl.Node(1), cl.Node(2)); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 6; r++ {
		mutator := cl.Node(r % 3)
		if err := trace.MutateZipf(mutator, g, 10, 1.2, seed+int64(r)); err != nil {
			t.Fatal(err)
		}
		if r%2 == 0 {
			for i := 0; i < 3; i++ {
				cl.Node(i).CollectBunch(b)
			}
		}
		cl.Run(0)
	}
	return cl.Heat().Snapshot()
}

func TestHeatTableDeterministicUnderSeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := heat.WriteRowsNDJSON(&a, driveHeatRun(t, 5)); err != nil {
		t.Fatal(err)
	}
	if err := heat.WriteRowsNDJSON(&b, driveHeatRun(t, 5)); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("heat table is empty after a traced run")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same seed produced different heat tables:\n%s\nvs\n%s", a.String(), b.String())
	}
	if c := driveHeatRun(t, 6); func() bool {
		var cb bytes.Buffer
		heat.WriteRowsNDJSON(&cb, c)
		return bytes.Equal(a.Bytes(), cb.Bytes())
	}() {
		t.Fatal("different seeds produced identical heat tables")
	}
}

// TestHeatFindsOwnerMismatchOnRotatingWriters is the simnet acceptance
// shape: rotating mutators leave at least one object owned by a node other
// than its dominant writer, and the analyzer names it with its remote ratio.
func TestHeatFindsOwnerMismatchOnRotatingWriters(t *testing.T) {
	rows := driveHeatRun(t, 5)
	rep := heat.Analyze(rows)
	if rep.TrackedObjects == 0 || rep.TotalAccesses == 0 {
		t.Fatalf("empty locality report: %+v", rep)
	}
	if rep.RemoteAcquires == 0 {
		t.Fatal("rotating mutators produced no remote acquires")
	}
	if len(rep.Mismatches) == 0 {
		t.Fatal("rotating writers left no owner/dominant-writer mismatch")
	}
	m := rep.Mismatches[0]
	if m.Owner == m.Dominant {
		t.Fatalf("mismatch entry does not mismatch: %+v", m)
	}
	t.Logf("heat: %d objects, remote ratio %.2f, top mismatch O%d owner N%d dominant N%d (hops %d)",
		rep.TrackedObjects, rep.RemoteRatio, m.OID, m.Owner, m.Dominant, m.WastedHops)
}

// TestHeatCountersUnderConcurrentMutatorsAndGC is the cluster-level -race
// hammer: per-node mutator goroutines writing disjoint bunches while each
// runs its own collections, heat accounting on, background traffic drained
// concurrently — the parallel driver's shape with the heat table in play.
func TestHeatCountersUnderConcurrentMutatorsAndGC(t *testing.T) {
	const workers = 3
	cl := bmx.New(bmx.Config{Nodes: workers, SegWords: 256, Seed: 9, SendLatency: 1, CallLatency: 1})
	cl.EnableHeat()
	stop := make(chan struct{})
	var drain sync.WaitGroup
	drain.Add(1)
	go func() {
		defer drain.Done()
		for {
			select {
			case <-stop:
				return
			default:
				cl.RunConcurrent(0)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(n *bmx.Node) {
			defer wg.Done()
			b := n.NewBunch()
			var objs []bmx.Ref
			for i := 0; i < 12; i++ {
				o, err := n.Alloc(b, 2)
				if err != nil {
					t.Error(err)
					return
				}
				n.AddRoot(o)
				objs = append(objs, o)
			}
			for r := 1; r <= 6; r++ {
				for i, o := range objs {
					if err := n.AcquireWrite(o); err != nil {
						t.Error(err)
						return
					}
					if err := n.WriteWord(o, 1, uint64(r*i)); err != nil {
						t.Error(err)
						return
					}
					if _, err := n.ReadWord(o, 1); err != nil {
						t.Error(err)
						return
					}
					n.Release(o)
				}
				if r%2 == 0 {
					n.CollectBunch(b)
				}
			}
		}(cl.Node(w))
	}
	wg.Wait()
	close(stop)
	drain.Wait()
	cl.RunConcurrent(0)

	rows := cl.Heat().Snapshot()
	var writes uint64
	for _, r := range rows {
		writes += r.Writes
	}
	// 3 workers × 6 rounds × 12 objects: no write may be lost.
	if want := uint64(workers * 6 * 12); writes != want {
		t.Fatalf("heat table lost writes under concurrency: %d, want %d", writes, want)
	}
	if errs := cl.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants violated: %v", errs)
	}
}
