package bmx_test

// Benchmarks, one family per experiment in EXPERIMENTS.md (E1-E9, A1-A2)
// plus micro-benchmarks of the primitive operations. The experiment
// families measure the real wall-clock cost of regenerating each table's
// workload; the structural claims themselves (zero tokens, zero extra
// messages, ...) are asserted by the exp package's tests.

import (
	"fmt"
	"sync"
	"testing"

	"bmx"
	"bmx/internal/baseline"
	"bmx/internal/cluster"
	"bmx/internal/core"
	"bmx/internal/exp"
	"bmx/internal/trace"
)

func benchCluster(nodes int) *bmx.Cluster {
	return bmx.New(bmx.Config{Nodes: nodes, SegWords: 512, Seed: 1})
}

// sharedList builds an n-object list at node 0 shared read-only on every
// other node.
func sharedList(b *testing.B, cl *bmx.Cluster, objs int) (bmx.BunchID, trace.Graph) {
	b.Helper()
	n0 := cl.Node(0)
	bu := n0.NewBunch()
	g, err := trace.BuildList(n0, bu, objs)
	if err != nil {
		b.Fatal(err)
	}
	var others []*cluster.Node
	for i := 1; i < cl.Nodes(); i++ {
		others = append(others, cl.Node(i))
	}
	if err := trace.Share(g.Objects, others...); err != nil {
		b.Fatal(err)
	}
	return bu, g
}

// ---- E1: collection with and without token acquisition ---------------------

func BenchmarkE1_BGC(b *testing.B) {
	cl := benchCluster(3)
	bu, _ := sharedList(b, cl, 40)
	n0 := cl.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n0.CollectBunch(bu)
		cl.Run(0)
	}
}

func BenchmarkE1_TokenGC(b *testing.B) {
	cl := benchCluster(3)
	bu, g := sharedList(b, cl, 40)
	n0 := cl.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.TokenCollectBunch(n0, bu); err != nil {
			b.Fatal(err)
		}
		cl.Run(0)
		b.StopTimer()
		// Restore the replicas the token GC just invalidated, so every
		// iteration measures the same disruption.
		for j := 1; j < cl.Nodes(); j++ {
			if err := trace.Share(g.Objects, cl.Node(j)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
}

// ---- E2: BGC at the owner under varying replication ------------------------

func BenchmarkE2_ReplicationDegree(b *testing.B) {
	for _, r := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("replicas=%d", r), func(b *testing.B) {
			cl := benchCluster(r)
			bu, _ := sharedList(b, cl, 60)
			n0 := cl.Node(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n0.CollectBunch(bu)
				cl.Run(0)
			}
		})
	}
}

// ---- E3: mutate+collect round, lazy vs eager updates ------------------------

func BenchmarkE3_Round(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			cl := benchCluster(2)
			bu, g := sharedList(b, cl, 30)
			n0, n1 := cl.Node(0), cl.Node(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := trace.MutateValues(n1, g, 10, int64(i)); err != nil {
					b.Fatal(err)
				}
				n0.CollectBunch(bu)
				if eager {
					n0.FlushLocations()
				}
				cl.Run(0)
			}
		})
	}
}

// ---- E4: pause accounting, concurrent vs stop-the-world ---------------------

func BenchmarkE4_Collect(b *testing.B) {
	for _, objs := range []int{64, 256, 512} {
		b.Run(fmt.Sprintf("objects=%d", objs), func(b *testing.B) {
			cl := benchCluster(1)
			n0 := cl.Node(0)
			bu := n0.NewBunch()
			g, err := trace.BuildList(n0, bu, objs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n0.CollectBunchOpts(bu, core.CollectOpts{DuringTrace: func() {
					if err := trace.MutateValues(n0, g, 8, int64(i)); err != nil {
						b.Fatal(err)
					}
				}})
			}
		})
	}
}

// ---- E5: reclamation under message loss -------------------------------------

func BenchmarkE5_LossyReclamation(b *testing.B) {
	for _, loss := range []float64{0, 0.3} {
		b.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cl := bmx.New(bmx.Config{Nodes: 2, SegWords: 512, Seed: int64(i + 1), LossRate: loss})
				n1, n2 := cl.Node(0), cl.Node(1)
				b1, b2 := n1.NewBunch(), n2.NewBunch()
				tgt := n2.MustAlloc(b2, 1)
				src := n1.MustAlloc(b1, 1)
				n1.AddRoot(src)
				if err := n1.AcquireRead(tgt); err != nil {
					b.Fatal(err)
				}
				if err := n1.WriteRef(src, 0, tgt); err != nil {
					b.Fatal(err)
				}
				n1.CollectBunch(b1)
				cl.Run(0)
				if err := n1.AcquireWrite(src); err != nil {
					b.Fatal(err)
				}
				if err := n1.WriteRef(src, 0, bmx.Nil); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for r := 0; r < 12; r++ {
					n1.CollectBunch(b1)
					n2.CollectBunch(b2)
					cl.Run(0)
					if _, present := n2.Collector().Heap().Canonical(tgt.OID); !present {
						break
					}
				}
			}
		})
	}
}

// ---- E6: distributed chain reclamation --------------------------------------

func BenchmarkE6_ChainReclaim(b *testing.B) {
	for _, L := range []int{2, 8} {
		b.Run(fmt.Sprintf("len=%d", L), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				nodes := 4
				if L < nodes {
					nodes = L
				}
				cl := benchCluster(nodes)
				var objs []bmx.Ref
				var owners []*cluster.Node
				for j := 0; j <= L; j++ {
					nd := cl.Node(j % nodes)
					bu := nd.NewBunch()
					objs = append(objs, nd.MustAlloc(bu, 1))
					owners = append(owners, nd)
				}
				cl.Node(0).AddRoot(objs[0])
				for j := 0; j < L; j++ {
					nd := owners[j]
					if err := nd.AcquireWrite(objs[j]); err != nil {
						b.Fatal(err)
					}
					if err := nd.AcquireRead(objs[j+1]); err != nil {
						b.Fatal(err)
					}
					if err := nd.WriteRef(objs[j], 0, objs[j+1]); err != nil {
						b.Fatal(err)
					}
				}
				cl.Node(0).RemoveRoot(objs[0])
				b.StartTimer()
				for r := 0; r < 4*L+8; r++ {
					for j := 0; j < nodes; j++ {
						nd := cl.Node(j)
						for _, bu := range nd.Collector().MappedBunches() {
							nd.CollectBunch(bu)
						}
						cl.Run(0)
					}
					if _, present := owners[L].Collector().Heap().Canonical(objs[L].OID); !present {
						break
					}
				}
			}
		})
	}
}

// ---- E7: whole-cluster collection, weak vs strong ----------------------------

func BenchmarkE7_WeakAllNodes(b *testing.B) {
	cl := benchCluster(4)
	bu, _ := sharedList(b, cl, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < cl.Nodes(); j++ {
			cl.Node(j).CollectBunch(bu)
		}
		cl.Run(0)
	}
}

func BenchmarkE7_StrongAllNodes(b *testing.B) {
	cl := benchCluster(4)
	sharedList(b, cl, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.StrongCollectAll(cl); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E8: the write barrier ----------------------------------------------------

func BenchmarkE8_WriteBarrier(b *testing.B) {
	b.Run("intra-bunch", func(b *testing.B) {
		cl := benchCluster(1)
		n0 := cl.Node(0)
		bu := n0.NewBunch()
		src := n0.MustAlloc(bu, 1)
		tgt := n0.MustAlloc(bu, 1)
		n0.AddRoot(src)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := n0.WriteRef(src, 0, tgt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inter-bunch-local", func(b *testing.B) {
		cl := benchCluster(1)
		n0 := cl.Node(0)
		b1, b2 := n0.NewBunch(), n0.NewBunch()
		src := n0.MustAlloc(b1, 1)
		tgt := n0.MustAlloc(b2, 1)
		n0.AddRoot(src)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := n0.WriteRef(src, 0, tgt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		cl := benchCluster(1)
		n0 := cl.Node(0)
		bu := n0.NewBunch()
		src := n0.MustAlloc(bu, 1)
		n0.AddRoot(src)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := n0.WriteWord(src, 0, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E9: checkpoint and recovery ----------------------------------------------

func BenchmarkE9_CheckpointRecover(b *testing.B) {
	for _, objs := range []int{32, 128} {
		b.Run(fmt.Sprintf("objects=%d", objs), func(b *testing.B) {
			cl := bmx.New(bmx.Config{Nodes: 1, SegWords: 512, Seed: 1, WithDisk: true})
			n0 := cl.Node(0)
			bu := n0.NewBunch()
			g, err := trace.BuildList(n0, bu, objs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := n0.Checkpoint(bu); err != nil {
					b.Fatal(err)
				}
				if err := n0.WriteWord(g.Objects[0], 1, uint64(i)); err != nil {
					b.Fatal(err)
				}
				n0.Sync()
				if err := n0.Crash(bu); err != nil {
					b.Fatal(err)
				}
				if err := n0.RecoverBunch(bu); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- A1/A2: ablations -----------------------------------------------------------

func BenchmarkA1_OwnershipTransfer(b *testing.B) {
	for _, replicate := range []bool{false, true} {
		name := "intraSSP"
		if replicate {
			name = "replicatedSSP"
		}
		b.Run(name, func(b *testing.B) {
			cl := benchCluster(3)
			for i := 0; i < cl.Nodes(); i++ {
				cl.Node(i).Collector().SetReplicateInterSSPs(replicate)
			}
			n0, n1, n2 := cl.Node(0), cl.Node(1), cl.Node(2)
			bu := n0.NewBunch()
			bT := n2.NewBunch()
			o := n0.MustAlloc(bu, 1)
			n0.AddRoot(o)
			tgt := n2.MustAlloc(bT, 1)
			if err := n0.AcquireRead(tgt); err != nil {
				b.Fatal(err)
			}
			if err := n0.WriteRef(o, 0, tgt); err != nil {
				b.Fatal(err)
			}
			if err := n1.MapBunch(bu); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nd := n1
				if i%2 == 1 {
					nd = n0
				}
				if err := nd.AcquireWrite(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkA2_LocationPropagation(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			cl := benchCluster(2)
			bu, _ := sharedList(b, cl, 20)
			n0 := cl.Node(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n0.CollectBunch(bu)
				if eager {
					n0.FlushLocations()
				}
				cl.Run(0)
			}
		})
	}
}

// ---- Micro-benchmarks of the primitives ---------------------------------------

func BenchmarkAlloc(b *testing.B) {
	cl := bmx.New(bmx.Config{Nodes: 1, SegWords: 4096})
	n0 := cl.Node(0)
	bu := n0.NewBunch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n0.Alloc(bu, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAcquireReadCached(b *testing.B) {
	cl := benchCluster(2)
	n0, n1 := cl.Node(0), cl.Node(1)
	bu := n0.NewBunch()
	o := n0.MustAlloc(bu, 2)
	if err := n1.AcquireRead(o); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n1.AcquireRead(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAcquireWritePingPong(b *testing.B) {
	cl := benchCluster(2)
	n0, n1 := cl.Node(0), cl.Node(1)
	bu := n0.NewBunch()
	o := n0.MustAlloc(bu, 2)
	n0.AddRoot(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd := n1
		if i%2 == 1 {
			nd = n0
		}
		if err := nd.AcquireWrite(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadRef(b *testing.B) {
	cl := benchCluster(1)
	n0 := cl.Node(0)
	bu := n0.NewBunch()
	o := n0.MustAlloc(bu, 2)
	t := n0.MustAlloc(bu, 1)
	if err := n0.WriteRef(o, 0, t); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n0.ReadRef(o, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBGCSteadyState(b *testing.B) {
	for _, objs := range []int{100, 400, 2000} {
		b.Run(fmt.Sprintf("objects=%d", objs), func(b *testing.B) {
			cl := bmx.New(bmx.Config{Nodes: 1, SegWords: 4096})
			n0 := cl.Node(0)
			bu := n0.NewBunch()
			if _, err := trace.BuildList(n0, bu, objs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n0.CollectBunch(bu)
			}
		})
	}
}

func BenchmarkSixteenNodeCollection(b *testing.B) {
	cl := benchCluster(16)
	bu, _ := sharedList(b, cl, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < cl.Nodes(); j++ {
			cl.Node(j).CollectBunch(bu)
		}
		cl.Run(0)
	}
}

func BenchmarkExperimentHarness(b *testing.B) {
	// The cost of regenerating a representative full table.
	b.Run("E1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if t := exp.RunE1(); !t.Pass {
				b.Fatal("E1 shape violated")
			}
		}
	})
	b.Run("E8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if t := exp.RunE8(); !t.Pass {
				b.Fatal("E8 shape violated")
			}
		}
	})
}

// ---- A3/A4/A5 and transactions ----------------------------------------------

func BenchmarkA3_ProtocolVariants(b *testing.B) {
	for _, p := range []bmx.Protocol{bmx.ProtocolEntry, bmx.ProtocolStrict} {
		b.Run(p.String(), func(b *testing.B) {
			cl := bmx.New(bmx.Config{Nodes: 2, SegWords: 512, Seed: 1, Consistency: p})
			n0, n1 := cl.Node(0), cl.Node(1)
			bu := n0.NewBunch()
			o := n0.MustAlloc(bu, 2)
			n0.AddRoot(o)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := n1.AcquireRead(o); err != nil {
					b.Fatal(err)
				}
				if _, err := n1.ReadWord(o, 0); err != nil {
					b.Fatal(err)
				}
				n1.Release(o)
			}
		})
	}
}

func BenchmarkA4_GranularityAcquire(b *testing.B) {
	for _, coarse := range []bool{false, true} {
		name := "object"
		if coarse {
			name = "segment"
		}
		b.Run(name, func(b *testing.B) {
			cl := bmx.New(bmx.Config{Nodes: 2, SegWords: 128, Seed: 1, SegmentGrainTokens: coarse})
			n0, n1 := cl.Node(0), cl.Node(1)
			bu := n0.NewBunch()
			g, err := trace.BuildList(n0, bu, 8)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nd := n1
				if i%2 == 1 {
					nd = n0
				}
				if err := nd.AcquireWrite(g.Objects[i%8]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkA5_Grouping(b *testing.B) {
	build := func() *bmx.Node {
		cl := bmx.New(bmx.Config{Nodes: 1, SegWords: 512})
		n := cl.Node(0)
		for c := 0; c < 2; c++ {
			b1, b2 := n.NewBunch(), n.NewBunch()
			x := n.MustAlloc(b1, 1)
			y := n.MustAlloc(b2, 1)
			n.WriteRef(x, 0, y)
			n.WriteRef(y, 0, x)
		}
		iso := n.NewBunch()
		if _, err := trace.BuildList(n, iso, 40); err != nil {
			b.Fatal(err)
		}
		return n
	}
	b.Run("whole-site", func(b *testing.B) {
		n := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.CollectGroup(nil)
		}
	})
	b.Run("connected-components", func(b *testing.B) {
		n := build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.CollectConnectedGroups()
		}
	})
}

func BenchmarkTxCommit(b *testing.B) {
	cl := bmx.New(bmx.Config{Nodes: 1, SegWords: 512})
	n := cl.Node(0)
	bu := n.NewBunch()
	o := n.MustAlloc(bu, 2)
	n.AddRoot(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := n.Begin()
		if err := tx.WriteWord(o, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelDisjointMutators measures the payoff of per-node
// locking: W worker goroutines, each the sole mutator of its own node and
// bunch, doing acquire/write/read/release rounds with a collection every
// 64 operations. Workers share only the internally locked directory,
// allocator and network, so on multicore hardware throughput scales with W
// where the old global cluster lock serialized everything. Reported time
// is per operation across all workers.
func BenchmarkParallelDisjointMutators(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cl := bmx.New(bmx.Config{Nodes: workers, SegWords: 512, Seed: 1})
			type lane struct {
				n    *cluster.Node
				bu   bmx.BunchID
				objs []bmx.Ref
			}
			lanes := make([]lane, workers)
			for w := 0; w < workers; w++ {
				n := cl.Node(w)
				bu := n.NewBunch()
				var objs []bmx.Ref
				for j := 0; j < 8; j++ {
					r := n.MustAlloc(bu, 4)
					n.AddRoot(r)
					objs = append(objs, r)
				}
				lanes[w] = lane{n: n, bu: bu, objs: objs}
			}
			perWorker := b.N/workers + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(l lane) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						r := l.objs[i%len(l.objs)]
						if err := l.n.AcquireWrite(r); err != nil {
							b.Error(err)
							return
						}
						if err := l.n.WriteWord(r, 1, uint64(i)); err != nil {
							b.Error(err)
							return
						}
						if _, err := l.n.ReadWord(r, 1); err != nil {
							b.Error(err)
							return
						}
						l.n.Release(r)
						if i%64 == 63 {
							l.n.CollectBunch(l.bu)
						}
					}
				}(lanes[w])
			}
			wg.Wait()
			b.StopTimer()
			cl.RunConcurrent(0)
		})
	}
}

// BenchmarkParallelRunConcurrent compares draining one backlog of
// background messages with the deterministic single-driver Run against the
// goroutine-per-node RunConcurrent.
func BenchmarkParallelRunConcurrent(b *testing.B) {
	build := func() *bmx.Cluster {
		cl := bmx.New(bmx.Config{Nodes: 4, SegWords: 512, Seed: 1})
		sharedList(b, cl, 64)
		for i := 0; i < cl.Nodes(); i++ {
			cl.Node(i).CollectConnectedGroups()
			cl.Node(i).FlushLocations()
		}
		return cl
	}
	b.Run("Run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cl := build()
			b.StartTimer()
			cl.Run(0)
		}
	})
	b.Run("RunConcurrent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cl := build()
			b.StartTimer()
			cl.RunConcurrent(0)
		}
	})
}
