// Command bmxd drives a simulated BMX cluster through a configurable
// workload — allocation, sharing, mutation, churn — with periodic bunch
// collections, scion cleaning and group collections, then reports the
// system's accounting: message counts by class and kind, piggyback volume,
// token activity attributed to the application versus the collector, pause
// times and reclamation totals.
//
// Example:
//
//	bmxd -nodes 4 -objects 200 -rounds 20 -workload web -churn 0.2 -loss 0.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bmx"
	"bmx/internal/introspect"
	"bmx/internal/obs"
	"bmx/internal/obs/heat"
	"bmx/internal/store"
	"bmx/internal/trace"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 3, "cluster size")
		objects   = flag.Int("objects", 100, "objects in the workload graph")
		rounds    = flag.Int("rounds", 10, "mutate/collect rounds")
		workload  = flag.String("workload", "list", "graph shape: list, tree, web, oo7, zipf (hot-object skew) or churn-heavy (high allocation/death)")
		zipfS     = flag.Float64("zipf-s", 1.2, "zipf workload: skew exponent (> 1; larger = hotter head)")
		bunchN    = flag.Int("bunches", 1, "shard the workload graph across this many bunches (gives -gc-workers independent bunches to collect in parallel)")
		protocol  = flag.String("protocol", "entry", "consistency protocol: entry or strict")
		grain     = flag.String("grain", "object", "token granularity: object or segment")
		churn     = flag.Float64("churn", 0.2, "fraction of links cut per churn step")
		loss      = flag.Float64("loss", 0, "background message loss rate")
		gcEvery   = flag.Int("gc-every", 2, "run BGCs every N rounds")
		gcWorkers = flag.Int("gc-workers", 1, "parallel GC worker pool per node: collect every mapped bunch with this many workers (>1 releases the node lock around trace/copy/fixup)")
		ggcEvery  = flag.Int("ggc-every", 5, "run the group collector every N rounds")
		reclaim   = flag.Bool("reclaim", true, "run the from-space reuse protocol after GCs")
		seed      = flag.Int64("seed", 1, "workload and loss seed")
		workers   = flag.Int("workers", 1, "parallel mutator goroutines (>1 switches to the concurrent disjoint-bunch workload)")
		verbose   = flag.Bool("v", false, "print per-round progress")

		traceOn   = flag.Bool("trace", false, "enable the flight recorder; dump its retained event window and histograms at exit")
		traceJSON = flag.Bool("trace-json", false, "like -trace, but dump events as newline-delimited JSON")
		statsJSON = flag.Bool("stats-json", false, "dump the final counters and histogram snapshots as JSON instead of text")

		httpAddr   = flag.String("http", "", "serve live introspection (/metrics, /events, /objects/<oid>, /series, /debug/pprof) on this address, e.g. :8080 or 127.0.0.1:0")
		httpHold   = flag.Bool("http-hold", false, "after the run, keep the introspection server alive until killed (scrape mode)")
		seriesJSON = flag.String("series-json", "", "write the per-round time-series samples as NDJSON to this file (- for stdout)")
		benchJSON  = flag.String("bench-json", "", "write the run's benchmark summary (quantile trajectories + derived figures) as JSON to this file")

		storeKind = flag.String("store", "", "persistent store backend: mem, flatfs or lsm (empty = no persistence)")
		storeDir  = flag.String("store-dir", "", "flatfs only: directory for real durable files, one subdirectory per node (empty = simulated durability)")
		syncMode  = flag.String("sync", "pertx", "RVM commit discipline with -store: pertx (force the log every commit) or flip (group commit, one force per collection flip)")

		listen   = flag.String("listen", "", "multi-process mode: serve this node on ADDR (host:port) and cluster with -peers; rank in the sorted address set is the node identity, rank 0 drives")
		peersArg = flag.String("peers", "", "multi-process mode: comma-separated listen addresses of the other bmxd processes")
		traceOut = flag.String("trace-out", "", "multi-process mode: write this process's flight-recorder events as NDJSON to FILE (mergeable across processes with bmxstat -trace a,b,c)")

		migrate       = flag.Bool("migrate", false, "heat-driven placement: push write ownership to each object's dominant writer at every Run drain (enables heat accounting)")
		migrateBudget = flag.Int("migrate-budget", 0, "placement: max migrations per Run drain (0 = engine default)")
		migrateCool   = flag.Uint64("migrate-cooldown", 0, "placement: epochs an object rests after migrating (0 = engine default)")
		coalesceLoc   = flag.Bool("coalesce-loc", false, "coalesce invariant-2 location updates per destination node (batched dsm.locBatch messages)")
		hintCache     = flag.Bool("hint-cache", false, "cache the granting owner per object and start remote acquires there instead of at the stale ownerPtr")

		chaos      = flag.Bool("chaos", false, "run the seeded chaos soak instead of the workload driver")
		chaosSteps = flag.Int("chaos-steps", 400, "chaos: workload steps in the fault storm")
		dup        = flag.Float64("dup", 0, "chaos: message duplication probability")
		delay      = flag.Float64("delay", 0, "chaos: message delay probability")
		delayTicks = flag.Uint64("delay-ticks", 3, "chaos: ticks a delayed message is held")
		partEvery  = flag.Int("partition-every", 40, "chaos: cut a random node pair every N steps (0 = never)")
		partFor    = flag.Int("partition-for", 12, "chaos: heal each cut after N steps")

		crashChaos = flag.Bool("chaos-crash", false, "run the seeded crash-recovery chaos schedule instead of the workload driver (implies -store mem unless set)")
		crashEvery = flag.Int("crash-every", 0, "chaos-crash: kill a node mid-collection every N steps (0 = default schedule)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "chaos-crash: checkpoint a node's home bunch every N steps (0 = default schedule)")
	)
	flag.Parse()

	if *listen != "" {
		runPeerCluster(peerOpts{
			listen: *listen, peers: splitPeers(*peersArg),
			workload: *workload, objects: *objects, rounds: *rounds,
			gcEvery: *gcEvery, churn: *churn, seed: *seed, traceOut: *traceOut, verbose: *verbose,
			seriesOut: *seriesJSON, benchOut: *benchJSON,
		})
		return
	}

	proto := bmx.ProtocolEntry
	switch *protocol {
	case "entry":
	case "strict":
		proto = bmx.ProtocolStrict
	default:
		fmt.Fprintf(os.Stderr, "bmxd: unknown protocol %q\n", *protocol)
		os.Exit(2)
	}
	coarse := false
	switch *grain {
	case "object":
	case "segment":
		coarse = true
	default:
		fmt.Fprintf(os.Stderr, "bmxd: unknown grain %q\n", *grain)
		os.Exit(2)
	}
	if *workers > 1 && coarse {
		fmt.Fprintln(os.Stderr, "bmxd: segment-grain tokens support the deterministic single driver only (-workers 1)")
		os.Exit(2)
	}
	if *traceJSON {
		*traceOn = true
	}
	groupCommit := false
	switch *syncMode {
	case "pertx":
	case "flip":
		groupCommit = true
	default:
		fmt.Fprintf(os.Stderr, "bmxd: unknown sync mode %q\n", *syncMode)
		os.Exit(2)
	}
	withDisk, factory, err := storeConfig(*storeKind, *storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmxd:", err)
		os.Exit(2)
	}
	if *crashChaos {
		runCrashChaosCmd(bmx.CrashChaosConfig{
			Nodes: *nodes, Steps: *chaosSteps, Seed: *seed,
			CrashEvery: *crashEvery, CheckpointEvery: *ckptEvery,
			GroupCommit: groupCommit, Store: factory,
		}, *statsJSON)
		return
	}
	if *chaos {
		runChaos(chaosOpts{
			nodes: *nodes, steps: *chaosSteps, seed: *seed, proto: proto,
			drop: *loss, dup: *dup, delay: *delay, delayTicks: *delayTicks,
			partEvery: *partEvery, partFor: *partFor, migrate: *migrate,
			trace: *traceOn, traceJSON: *traceJSON, statsJSON: *statsJSON,
		})
		return
	}
	if *workers > *nodes {
		*nodes = *workers
	}
	cl := bmx.New(bmx.Config{
		Nodes: *nodes, SegWords: 512, Seed: *seed, LossRate: *loss,
		SendLatency: 1, CallLatency: 1,
		Consistency: proto, SegmentGrainTokens: coarse,
		WithDisk: withDisk, Store: factory, GroupCommit: groupCommit,
		CoalesceLocUpdates: *coalesceLoc, OwnerHintCache: *hintCache,
	})
	if *migrate {
		cl.EnablePlacement(bmx.PlaceConfig{Budget: *migrateBudget, Cooldown: *migrateCool})
	}
	if *traceOn {
		cl.EnableTracing()
		// A trace run is an observability run: account access locality too,
		// so the JSON dump carries heat rows for bmxstat -heat.
		cl.EnableHeat()
	}
	intr := introspection{
		httpAddr: *httpAddr, hold: *httpHold,
		seriesPath: *seriesJSON, benchPath: *benchJSON,
	}
	intr.start(cl)
	if *workers > 1 {
		runParallel(cl, *workers, *objects, *rounds, *gcEvery, *verbose)
		dumpStats(cl, *statsJSON, nil)
		dumpTrace(cl.Observer(), *traceOn, *traceJSON, cl.Heat().Snapshot())
		intr.finish(cl, cl.Heat().Snapshot())
		return
	}
	n0 := cl.Node(0)
	switch *workload {
	case "list", "tree", "web", "oo7", "zipf", "churn-heavy":
	default:
		fmt.Fprintf(os.Stderr, "bmxd: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if *bunchN < 1 {
		*bunchN = 1
	}
	// Shard the graph across -bunches independent bunches: each shard is a
	// self-contained instance of the workload shape, so the per-bunch
	// collections have no cross-shard SSPs and -gc-workers has genuinely
	// independent work to hand out.
	perShard := *objects / *bunchN
	if perShard < 1 {
		perShard = 1
	}
	var bunches []bmx.BunchID
	var g trace.Graph
	for s := 0; s < *bunchN; s++ {
		b := n0.NewBunch()
		bunches = append(bunches, b)
		sg, err := buildGraph(*workload, n0, b, perShard, *seed+int64(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bmxd:", err)
			os.Exit(1)
		}
		if s == 0 {
			g.Root = sg.Root
		}
		g.Objects = append(g.Objects, sg.Objects...)
	}

	var others []*bmx.Node
	for i := 1; i < *nodes; i++ {
		others = append(others, cl.Node(i))
	}
	if err := trace.Share(g.Objects, others...); err != nil {
		fmt.Fprintln(os.Stderr, "bmxd:", err)
		os.Exit(1)
	}

	totalDead := 0
	var gcTotal bmx.CollectStats
	// churn-heavy's rolling live set: objects allocated by ChurnHeavyRound,
	// oldest first; every round unroots a prefix so the cleaner always has
	// fresh garbage.
	var live []bmx.Ref
	for r := 1; r <= *rounds; r++ {
		// Mutations from a rotating node.
		mutator := cl.Node(r % *nodes)
		switch *workload {
		case "zipf":
			// Skewed writes, zero churn: every object stays reachable, so
			// the hot head keeps bouncing between the rotating mutators and
			// the heat table shows steady-state skew.
			if err := trace.MutateZipf(mutator, g, 10, *zipfS, *seed+int64(r)); err != nil {
				fmt.Fprintln(os.Stderr, "bmxd:", err)
				os.Exit(1)
			}
		case "churn-heavy":
			var err error
			live, err = trace.ChurnHeavyRound(n0, bunches[0], live, 12, 8, *seed+int64(r))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bmxd:", err)
				os.Exit(1)
			}
			if err := trace.MutateValues(mutator, trace.Graph{Objects: live}, 10, *seed+int64(r)); err != nil {
				fmt.Fprintln(os.Stderr, "bmxd:", err)
				os.Exit(1)
			}
		default:
			if err := trace.MutateValues(mutator, g, 10, *seed+int64(r)); err != nil {
				fmt.Fprintln(os.Stderr, "bmxd:", err)
				os.Exit(1)
			}
			if _, err := trace.Churn(n0, g, *churn/float64(*rounds), *seed+int64(r)); err != nil {
				fmt.Fprintln(os.Stderr, "bmxd:", err)
				os.Exit(1)
			}
		}
		// With a store, each round is one committed transaction: under
		// -sync pertx the commit forces the log here and now; under
		// -sync flip it only appends, and the next collection's flip
		// barrier forces the whole batch with a single sync.
		if withDisk {
			mutator.Sync()
			if mutator != n0 {
				n0.Sync()
			}
		}
		if *gcEvery > 0 && r%*gcEvery == 0 {
			for i := 0; i < *nodes; i++ {
				node := cl.Node(i)
				var st bmx.CollectStats
				if *gcWorkers > 1 || len(bunches) > 1 {
					st = node.CollectBunches(node.Collector().MappedBunches(), *gcWorkers)
				} else {
					st = node.CollectBunch(bunches[0])
				}
				totalDead += st.Dead
				gcTotal.Merge(st)
				if *verbose {
					fmt.Printf("round %d: BGC at N%d: live %d, dead %d, copied %d, pause %d ticks\n",
						r, i+1, st.LiveStrong+st.LiveWeak, st.Dead, st.Copied,
						st.PauseRootTicks+st.PauseFlipTicks)
				}
			}
			if *reclaim {
				for _, rb := range bunches {
					cl.Node(0).ReclaimFromSpace(rb)
				}
			}
		}
		if *ggcEvery > 0 && r%*ggcEvery == 0 {
			st := cl.Node(0).CollectGroup(nil)
			totalDead += st.Dead
			gcTotal.Merge(st)
			if *verbose {
				fmt.Printf("round %d: GGC at N1: %d bunches, dead %d\n", r, st.Bunches, st.Dead)
			}
		}
		cl.Run(0)
	}

	st := cl.Stats()
	fmt.Printf("workload: %s, %d objects, %d nodes, %d rounds, loss %.0f%%, protocol %s, grain %s\n",
		*workload, len(g.Objects), *nodes, *rounds, *loss*100, *protocol, *grain)
	fmt.Printf("objects reclaimed locally (sum over replicas): %d\n", totalDead)
	fmt.Printf("present at N1 at end: %d / %d\n", trace.CountPresent(n0, g), len(g.Objects))
	fmt.Println()
	fmt.Println("-- the paper's independence claims, measured --")
	fmt.Printf("token acquires by the application : %d\n",
		st.Get("dsm.acquire.r.app")+st.Get("dsm.acquire.w.app"))
	fmt.Printf("token acquires by the collector   : %d   (must be 0)\n",
		st.Get("dsm.acquire.r.gc")+st.Get("dsm.acquire.w.gc"))
	fmt.Printf("invalidations caused by collector : %d   (must be 0)\n",
		st.Get("dsm.invalidation.gc"))
	fmt.Printf("app messages                      : %d\n", st.Get("msg.sent.app"))
	fmt.Printf("GC messages (tables etc.)         : %d\n", st.Get("msg.sent.gc"))
	fmt.Printf("GC bytes piggybacked on app msgs  : %d\n", st.Get("bytes.piggyback"))
	fmt.Printf("background messages lost          : %d\n", st.Get("msg.lost"))
	// Aggregate CPU (sum of per-bunch cost-model work, deterministic) vs
	// wall time (real elapsed; pool runs report the overall elapsed, not
	// the per-bunch sum) — their ratio is the point of -gc-workers. Wall
	// time is printed only in pool mode: serial runs must stay
	// byte-for-byte identical across same-seed invocations.
	if *gcWorkers > 1 {
		fmt.Printf("GC work: %d cpu ticks in %s wall  (-gc-workers %d)\n",
			gcTotal.CPUTicks, time.Duration(gcTotal.WallNS).Round(time.Microsecond), *gcWorkers)
	} else {
		fmt.Printf("GC work: %d cpu ticks\n", gcTotal.CPUTicks)
	}
	fmt.Println()
	dumpStats(cl, *statsJSON, &gcTotal)
	dumpTrace(cl.Observer(), *traceOn, *traceJSON, cl.Heat().Snapshot())

	if st.Get("dsm.acquire.r.gc")+st.Get("dsm.acquire.w.gc") != 0 ||
		st.Get("dsm.invalidation.gc") != 0 {
		fmt.Fprintln(os.Stderr, "bmxd: COLLECTOR INTERFERED WITH THE CONSISTENCY PROTOCOL")
		os.Exit(1)
	}
	intr.finish(cl, cl.Heat().Snapshot())
}

// buildGraph builds one workload shard of roughly `objects` objects in
// bunch b at node nd.
func buildGraph(workload string, nd *bmx.Node, b bmx.BunchID, objects int, seed int64) (trace.Graph, error) {
	switch workload {
	case "list":
		return trace.BuildList(nd, b, objects)
	case "tree":
		depth := 1
		for (1<<(depth+1))-1 < objects {
			depth++
		}
		return trace.BuildTree(nd, b, depth)
	case "web":
		return trace.BuildWeb(nd, b, trace.WebConfig{
			Objects: objects, OutDegree: 3, Seed: seed, DeadFrac: 0,
		})
	case "zipf":
		// Fully reachable web graph: the skew comes from the access pattern
		// (MutateZipf), not the shape, and nothing may die under the
		// mutator's feet.
		return trace.BuildWeb(nd, b, trace.WebConfig{
			Objects: objects, OutDegree: 3, Seed: seed, DeadFrac: 0,
		})
	case "churn-heavy":
		// A stable shared base list; the per-round allocation/death storm
		// rides on top (ChurnHeavyRound in the driver loop).
		return trace.BuildList(nd, b, objects)
	case "oo7":
		cfg := trace.DefaultOO7()
		cfg.Seed = seed
		for cfg.TotalObjects() < objects {
			cfg.Modules++
		}
		db, err := trace.BuildOO7(nd, b, cfg)
		if err != nil {
			return trace.Graph{}, err
		}
		return trace.Graph{Root: db.Root, Objects: db.Objects}, nil
	}
	return trace.Graph{}, fmt.Errorf("unknown workload %q", workload)
}

// storeConfig maps the -store/-store-dir flags onto the cluster's
// persistence knobs: whether nodes get disks at all, and which backend
// factory builds them. A nil factory with disks on selects the cluster's
// default deterministic mem backend.
func storeConfig(kind, dir string) (bool, func() store.Store, error) {
	switch kind {
	case "":
		return false, nil, nil
	case "mem":
		return true, nil, nil
	case "flatfs":
		// One subdirectory per node so two nodes never share a namespace;
		// with no -store-dir the flatfs durability is simulated in memory.
		node := 0
		return true, func() store.Store {
			node++
			sub := ""
			if dir != "" {
				sub = filepath.Join(dir, fmt.Sprintf("node%d", node))
			}
			return store.NewFlatFS(sub)
		}, nil
	case "lsm":
		return true, func() store.Store { return store.NewLSM() }, nil
	}
	return false, nil, fmt.Errorf("unknown store backend %q (want mem, flatfs or lsm)", kind)
}

// runCrashChaosCmd runs the crash-recovery chaos schedule and reports it.
// Exit status 1 if any kill/restart broke the durable state machine.
func runCrashChaosCmd(cfg bmx.CrashChaosConfig, statsJSON bool) {
	rep := bmx.RunCrashChaos(cfg)
	fmt.Printf("crash chaos: %d nodes, %d steps, seed %d, group commit %v\n",
		cfg.Nodes, rep.Steps, cfg.Seed, cfg.GroupCommit)
	fmt.Printf("ops %d, crashes %d (%d before flip sync, %d after), collections %d, checkpoints %d\n",
		rep.Ops, rep.Crashes, rep.BeforeSync, rep.AfterSync, rep.Collections, rep.Checkpoints)
	fmt.Printf("log forces %d, objects lost before first durability point %d\n",
		rep.Syncs, rep.LostAllocs)
	fmt.Printf("simulated ticks: %d\n", rep.ClockTicks)
	if statsJSON {
		statsToJSON(os.Stdout, rep.Stats, nil, nil)
	}
	if len(rep.Violations) == 0 {
		fmt.Println("recovered: every kill/restart preserved persistence-by-reachability")
		return
	}
	fmt.Printf("FAILED: %d violations\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Println("  " + v)
	}
	os.Exit(1)
}

// introspection bundles the live-readout flags: the HTTP server, the
// time-series file, and the benchmark summary.
type introspection struct {
	httpAddr   string
	hold       bool
	seriesPath string
	benchPath  string
}

func (in introspection) enabled() bool {
	return in.httpAddr != "" || in.seriesPath != "" || in.benchPath != ""
}

// start attaches the sampler (one sample per Run drain) and, with -http,
// brings up the introspection server before the workload runs so a scraper
// can watch the run live.
func (in introspection) start(cl *bmx.Cluster) {
	if !in.enabled() {
		return
	}
	cl.EnableSampling(0)
	// Heat accounting rides every introspection run: the bench summary's
	// locality figures and the /heat endpoint both read it.
	cl.EnableHeat()
	if in.httpAddr == "" {
		return
	}
	// The /events and /objects endpoints read the flight recorder; serving
	// them without tracing would 404 every biography.
	cl.EnableTracing()
	srv := &introspect.Server{
		Counters: cl.Stats().Snapshot,
		Observer: cl.Observer(),
		Sampler:  cl.Sampler(),
		Heat:     cl.Heat().Snapshot,
	}
	bound, err := srv.Serve(in.httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmxd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bmxd: introspection on http://%s/\n", bound)
}

// finish writes the series and bench artifacts and, with -http-hold, parks
// the process so the server stays scrapable. rows is the run's (merged, in
// peer mode) heat table: the bench summary's owner-mismatch figure comes
// from analyzing it.
func (in introspection) finish(cl *bmx.Cluster, rows []heat.Row) {
	if !in.enabled() {
		return
	}
	// The final state deserves a sample even if the last round predates it.
	cl.Sample()
	if in.seriesPath != "" {
		w := os.Stdout
		if in.seriesPath != "-" {
			f, err := os.Create(in.seriesPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bmxd:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := cl.Sampler().WriteNDJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "bmxd:", err)
			os.Exit(1)
		}
	}
	if in.benchPath != "" {
		f, err := os.Create(in.benchPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bmxd:", err)
			os.Exit(1)
		}
		b := cl.Sampler().Bench()
		b.OwnerMismatchCount = int64(len(heat.Analyze(rows).Mismatches))
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b); err != nil {
			fmt.Fprintln(os.Stderr, "bmxd:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "bmxd: benchmark summary written to %s\n", in.benchPath)
	}
	if in.hold && in.httpAddr != "" {
		fmt.Fprintln(os.Stderr, "bmxd: run complete; holding for scrapes (-http-hold). Kill to exit.")
		select {}
	}
}

type chaosOpts struct {
	nodes, steps       int
	seed               int64
	proto              bmx.Protocol
	drop, dup, delay   float64
	delayTicks         uint64
	partEvery, partFor int
	migrate            bool

	trace, traceJSON, statsJSON bool
}

// runChaos runs the seeded chaos soak: the mixed mutator+GC storm under
// drop/duplication/delay and a rolling partition schedule, then heal, drain
// and the convergence audit. Exit status 1 if the cluster failed to converge.
func runChaos(o chaosOpts) {
	rep := bmx.RunChaos(bmx.ChaosConfig{
		Nodes: o.nodes, Steps: o.steps, Seed: o.seed, Consistency: o.proto,
		Faults: bmx.FaultPlan{Default: bmx.FaultRates{
			Drop: o.drop, Dup: o.dup, Delay: o.delay, DelayTicks: o.delayTicks,
		}},
		PartitionEvery: o.partEvery, PartitionFor: o.partFor,
		Trace: o.trace, Migrate: o.migrate,
	})
	fmt.Printf("chaos soak: %d nodes, %d steps, seed %d, drop %.0f%%, dup %.0f%%, delay %.0f%% (%d ticks)\n",
		o.nodes, rep.Steps, o.seed, o.drop*100, o.dup*100, o.delay*100, o.delayTicks)
	fmt.Printf("ops %d (failed %d, of which partitioned %d), partitions cut %d, collections %d, reclaims %d\n",
		rep.Ops, rep.OpErrors, rep.PartitionedOps, rep.Partitions, rep.Collections, rep.Reclaims)
	fmt.Printf("faults injected: duplicated %d, delayed %d, partitioned %d, lost %d\n",
		rep.Stats["msg.dup"], rep.Stats["msg.delayed"], rep.Stats["msg.partitioned"], rep.Stats["msg.lost"])
	fmt.Printf("simulated ticks: %d\n", rep.ClockTicks)
	if o.statsJSON {
		statsToJSON(os.Stdout, rep.Stats, nil, nil)
	}
	if o.trace {
		dumpEvents(rep.Events, o.traceJSON)
	}
	if len(rep.Violations) == 0 {
		fmt.Println("converged: all invariants hold after heal and drain")
		return
	}
	fmt.Printf("FAILED to converge: %d violations\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Println("  " + v)
	}
	os.Exit(1)
}

// dumpStats prints the final counters, as the flat text table or — with
// -stats-json — as one JSON object holding the sorted counters plus a
// snapshot of every histogram (buckets and quantiles), so one file captures
// the whole run.
func dumpStats(cl *bmx.Cluster, asJSON bool, gc *bmx.CollectStats) {
	st := cl.Stats()
	if asJSON {
		var hists []obs.HistSummary
		for _, h := range cl.Observer().Histograms() {
			if s := h.Summary(); s.Count > 0 {
				hists = append(hists, s)
			}
		}
		statsToJSON(os.Stdout, st.Snapshot(), hists, gc)
		return
	}
	fmt.Println("-- full counters --")
	fmt.Print(st.String())
}

// statsJSONDoc is the -stats-json document shape. The gc block carries the
// merged CollectStats of every collection the driver ran — wall time lives
// here rather than in the counters, which must stay deterministic.
type statsJSONDoc struct {
	Counters   map[string]int64  `json:"counters"`
	Histograms []obs.HistSummary `json:"histograms,omitempty"`
	GC         *gcJSON           `json:"gc,omitempty"`
}

type gcJSON struct {
	CPUTicks uint64 `json:"cpuTicks"`
	WallNS   int64  `json:"wallNS"`
}

func statsToJSON(w *os.File, snap map[string]int64, hists []obs.HistSummary, gc *bmx.CollectStats) {
	doc := statsJSONDoc{Counters: snap, Histograms: hists}
	if gc != nil {
		doc.GC = &gcJSON{CPUTicks: gc.CPUTicks, WallNS: gc.WallNS}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bmxd:", err)
		os.Exit(1)
	}
}

// dumpTrace prints the flight recorder's histograms and retained window; in
// JSON mode the heat rows ride along in the same NDJSON stream (each loose
// reader skips the other's lines, so `bmxstat -heat -trace` and
// `bmxstat -trace` both consume the one capture).
func dumpTrace(o *obs.Observer, on, asJSON bool, rows []heat.Row) {
	if !on {
		return
	}
	fmt.Println()
	fmt.Println("-- histograms --")
	if asJSON {
		if err := obs.DumpHistogramsJSON(os.Stdout, o.Histograms()); err != nil {
			fmt.Fprintln(os.Stderr, "bmxd:", err)
			os.Exit(1)
		}
	} else {
		obs.DumpHistograms(os.Stdout, o.Histograms())
	}
	dumpEvents(o.Events(), asJSON)
	if asJSON && len(rows) > 0 {
		fmt.Println()
		fmt.Printf("-- heat table (%d rows) --\n", len(rows))
		if err := heat.WriteRowsNDJSON(os.Stdout, rows); err != nil {
			fmt.Fprintln(os.Stderr, "bmxd:", err)
			os.Exit(1)
		}
	}
}

func dumpEvents(evs []obs.Event, asJSON bool) {
	fmt.Println()
	fmt.Printf("-- flight recorder window (%d events) --\n", len(evs))
	if asJSON {
		if err := obs.DumpJSON(os.Stdout, evs); err != nil {
			fmt.Fprintln(os.Stderr, "bmxd:", err)
			os.Exit(1)
		}
		return
	}
	obs.Dump(os.Stdout, evs)
}

// runParallel exercises the per-node locking payoff: one mutator goroutine
// per worker, each the sole user of its own node and bunch, running
// allocate/write/read/collect rounds concurrently, with background traffic
// drained by RunConcurrent between rounds. Disjoint bunches share only the
// directory, allocator and network, so wall-clock throughput scales with
// workers on multicore hardware.
func runParallel(cl *bmx.Cluster, workers, objects, rounds, gcEvery int, verbose bool) {
	perWorker := objects / workers
	if perWorker < 1 {
		perWorker = 1
	}
	start := time.Now()
	var totalOps, totalDead int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(n *bmx.Node) {
			defer wg.Done()
			b := n.NewBunch()
			var objs []bmx.Ref
			for j := 0; j < perWorker; j++ {
				r, err := n.Alloc(b, 4)
				if err != nil {
					fmt.Fprintln(os.Stderr, "bmxd:", err)
					os.Exit(1)
				}
				n.AddRoot(r)
				objs = append(objs, r)
			}
			ops, dead := 0, 0
			for r := 1; r <= rounds; r++ {
				for i, o := range objs {
					if err := n.AcquireWrite(o); err != nil {
						fmt.Fprintln(os.Stderr, "bmxd:", err)
						os.Exit(1)
					}
					if err := n.WriteWord(o, 1, uint64(r*i)); err != nil {
						fmt.Fprintln(os.Stderr, "bmxd:", err)
						os.Exit(1)
					}
					if _, err := n.ReadWord(o, 1); err != nil {
						fmt.Fprintln(os.Stderr, "bmxd:", err)
						os.Exit(1)
					}
					n.Release(o)
					ops += 3
				}
				if gcEvery > 0 && r%gcEvery == 0 {
					st := n.CollectBunch(b)
					dead += st.Dead
					if verbose {
						fmt.Printf("worker %v round %d: live %d, dead %d\n",
							n.ID(), r, st.LiveStrong+st.LiveWeak, st.Dead)
					}
				}
			}
			mu.Lock()
			totalOps += int64(ops)
			totalDead += int64(dead)
			mu.Unlock()
		}(cl.Node(w))
	}
	wg.Wait()
	cl.RunConcurrent(0)
	elapsed := time.Since(start)

	fmt.Printf("parallel workload: %d workers, %d objects each, %d rounds\n",
		workers, perWorker, rounds)
	fmt.Printf("mutator operations: %d in %v (%.0f ops/sec wall clock)\n",
		totalOps, elapsed.Round(time.Millisecond), float64(totalOps)/elapsed.Seconds())
	fmt.Printf("objects reclaimed locally: %d\n", totalDead)
	fmt.Println()
}
