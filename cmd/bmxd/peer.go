// Multi-process mode: -listen/-peers turn this bmxd process into one node
// of a real-socket cluster. Every process is started with the same address
// set (its own -listen plus the others as -peers); identity is the rank of
// the process's address in the sorted set, and rank 0 — the seed — owns the
// authoritative directory and drives the workload. The other processes
// follow a minimal control protocol ("ctl.*" synchronous calls): map the
// shared bunch, mutate on command, collect on command, report counters,
// shut down. Collections run in every process; the paper's independence
// probes are re-asserted per process and from the merged trace files.
package main

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"bmx"
	"bmx/internal/addr"
	"bmx/internal/obs"
	"bmx/internal/obs/heat"
	"bmx/internal/trace"
	"bmx/internal/transport"
)

// The driver-protocol payloads. Registered for the TCP transport's gob
// payload codec; every process runs the same binary.
type ctlMapReq struct{ Bunch addr.BunchID }

type ctlMutateReq struct {
	OIDs  []uint64
	Round uint64
}

type ctlAck struct{ N int }

type ctlStatsReply struct{ Counters map[string]int64 }

// ctlHeatReply carries one process's heat-table snapshot to the seed
// (ctl.heat); the seed merges the snapshots by Lamport order into the
// cluster-wide table (see PROTOCOL.md).
type ctlHeatReply struct{ Rows []heat.Row }

func init() {
	gob.Register(ctlMapReq{})
	gob.Register(ctlMutateReq{})
	gob.Register(ctlAck{})
	gob.Register(ctlStatsReply{})
	gob.Register(ctlHeatReply{})
}

// mutatedValue is the word every commanded write stores: recomputable by
// the seed for the convergence audit.
func mutatedValue(round uint64, idx int) uint64 { return round*1_000_000 + uint64(idx) }

type peerOpts struct {
	listen   string
	peers    []string
	workload string
	objects  int
	rounds   int
	gcEvery  int
	churn    float64
	seed     int64
	traceOut string
	verbose  bool
	// seriesOut/benchOut reuse the simulated driver's -series-json and
	// -bench-json artifacts; the seed cuts one sample per round, so a TCP
	// run diffs against a simnet run with bmxstat -bench A -diff B.
	seriesOut string
	benchOut  string
}

// runPeerCluster is the -listen entry point; it never returns.
func runPeerCluster(o peerOpts) {
	if len(o.peers) == 0 {
		fatalf("bmxd: -listen needs -peers (the other processes' addresses)")
	}
	p, err := bmx.NewPeer(bmx.PeerConfig{Listen: o.listen, Peers: o.peers, Seed: o.seed})
	if err != nil {
		fatalf("bmxd: %v", err)
	}
	defer p.Close()
	cl := p.Cluster()
	// Every process accounts access locality: the seed harvests the tables
	// over ctl.heat at the end and merges them by Lamport order, so the
	// cluster-wide heatmap exists whether or not tracing is on.
	cl.EnableHeat()
	if o.traceOut != "" {
		cl.Observer().SetRingSize(1 << 16)
		cl.EnableTracing()
	}
	if err := p.WaitReady(30 * time.Second); err != nil {
		fatalf("bmxd: node %v: %v", p.ID(), err)
	}
	fmt.Fprintf(os.Stderr, "bmxd: node %v of %d up at %s\n", p.ID(), p.Size(), p.Transport().Addr())
	if p.IsSeed() {
		drivePeerCluster(p, o)
	} else {
		followPeerCluster(p, o)
	}
}

// followPeerCluster serves ctl calls until the seed says shutdown, then
// audits its own counters, writes its trace and exits.
func followPeerCluster(p *bmx.Peer, o peerOpts) {
	n := p.Node()
	done := make(chan struct{})
	tick := make(chan struct{}, 1)
	p.SetControl(func(m transport.Msg) (any, int, error) {
		select {
		case tick <- struct{}{}:
		default:
		}
		switch m.Kind {
		case "ctl.map":
			req := m.Payload.(ctlMapReq)
			if err := n.MapBunch(req.Bunch); err != nil {
				return nil, 0, err
			}
			return ctlAck{}, 8, nil
		case "ctl.mutate":
			req := m.Payload.(ctlMutateReq)
			for i, raw := range req.OIDs {
				r := bmx.Ref{OID: addr.OID(raw)}
				if err := n.AcquireWrite(r); err != nil {
					return nil, 0, fmt.Errorf("acquire %v: %w", r, err)
				}
				// The last word is the payload slot in every workload layout;
				// the earlier words are pointer fields and must stay intact or
				// the subtree genuinely dies and the collector reclaims it.
				sz, err := n.Size(r)
				if err != nil {
					return nil, 0, err
				}
				if err := n.WriteWord(r, sz-1, mutatedValue(req.Round, i)); err != nil {
					return nil, 0, err
				}
				n.Release(r)
			}
			return ctlAck{N: len(req.OIDs)}, 8, nil
		case "ctl.collect":
			st := n.CollectBunches(n.Collector().MappedBunches(), 1)
			n.FlushLocations()
			return ctlAck{N: st.Dead}, 8, nil
		case "ctl.stats":
			return ctlStatsReply{Counters: p.Cluster().Stats().Snapshot()}, 64, nil
		case "ctl.heat":
			rows := p.Cluster().Heat().Snapshot()
			return ctlHeatReply{Rows: rows}, 16 + 64*len(rows), nil
		case "ctl.shutdown":
			// Reply first, then exit: the reply leaves on the conn's write
			// queue after this handler returns.
			go func() {
				time.Sleep(250 * time.Millisecond)
				close(done)
			}()
			return ctlAck{}, 8, nil
		}
		return nil, 0, fmt.Errorf("bmxd: unknown ctl kind %q", m.Kind)
	})
	// The seed drives every step and fatals on its own errors without
	// saying goodbye; prolonged silence means it is gone, and wedging here
	// forever would hang any harness waiting on this process.
	for waiting := true; waiting; {
		select {
		case <-done:
			waiting = false
		case <-tick:
		case <-time.After(60 * time.Second):
			fatalf("bmxd: node %v: no driver traffic for 60s, giving up", p.ID())
		}
	}
	writePeerTrace(p, o.traceOut)
	if msg, ok := auditIndependence(p.Cluster().Stats().Snapshot()); !ok {
		fatalf("bmxd: node %v FAILED: %s", p.ID(), msg)
	}
	fmt.Printf("bmxd: node %v SUCCESS\n", p.ID())
}

// drivePeerCluster is the seed: build the workload, command the rounds,
// audit convergence and the independence probes, shut everyone down.
func drivePeerCluster(p *bmx.Peer, o peerOpts) {
	n := p.Node()
	var others []addr.NodeID
	for i := 1; i < p.Size(); i++ {
		others = append(others, addr.NodeID(i))
	}

	intr := introspection{seriesPath: o.seriesOut, benchPath: o.benchOut}
	intr.start(p.Cluster())

	b := n.NewBunch()
	g, err := buildGraph(o.workload, n, b, o.objects, o.seed)
	if err != nil {
		fatalf("bmxd: %v", err)
	}
	for _, id := range others {
		if _, err := p.Control(id, "ctl.map", ctlMapReq{Bunch: b}, 16); err != nil {
			fatalf("bmxd: map at node %v: %v", id, err)
		}
	}

	// Edge model: every workload layout keeps its ref fields in words
	// 0..size-2 and the payload in the last word. The seed walks the graph
	// once while everything is still local, then mirrors each link cut in
	// the model, so it always knows which objects must survive — and which
	// ones the per-process collections must prove dead across real sockets.
	edges := make(map[addr.OID][]bmx.Ref, len(g.Objects))
	for _, r := range g.Objects {
		if err := n.AcquireRead(r); err != nil {
			fatalf("bmxd: edge walk %v: %v", r, err)
		}
		sz, err := n.Size(r)
		if err != nil {
			fatalf("bmxd: edge walk %v: %v", r, err)
		}
		refs := make([]bmx.Ref, 0, sz-1)
		for w := 0; w < sz-1; w++ {
			t, err := n.ReadRef(r, w)
			if err != nil {
				fatalf("bmxd: edge walk %v: %v", r, err)
			}
			refs = append(refs, t)
		}
		edges[r.OID] = refs
		n.Release(r)
	}

	// Rounds: the seed mutates through the normal workload mutator and cuts
	// links (the simulated driver's churn discipline) to create garbage; one
	// follower per round rewrites every live object (tokens migrate to it);
	// every process collects its replica on the GC cadence.
	rng := rand.New(rand.NewSource(o.seed))
	cuts := 0
	lastRound := uint64(0)
	lastLive := g.Objects
	for r := 1; r <= o.rounds; r++ {
		if err := trace.MutateValues(n, g, 10, o.seed+int64(r)); err != nil {
			fatalf("bmxd: %v", err)
		}
		for _, obj := range g.Objects {
			if len(edges[obj.OID]) == 0 || edges[obj.OID][0].IsNil() ||
				rng.Float64() >= o.churn/float64(o.rounds) {
				continue
			}
			if err := n.AcquireWrite(obj); err != nil {
				fatalf("bmxd: cut %v: %v", obj, err)
			}
			if err := n.WriteRef(obj, 0, bmx.Nil); err != nil {
				fatalf("bmxd: cut %v: %v", obj, err)
			}
			n.Release(obj)
			edges[obj.OID][0] = bmx.Nil
			cuts++
		}
		lastLive = reachable(g, edges)
		oids := make([]uint64, len(lastLive))
		for i, obj := range lastLive {
			oids[i] = uint64(obj.OID)
		}
		writer := others[(r-1)%len(others)]
		lastRound = uint64(r)
		if _, err := p.Control(writer, "ctl.mutate",
			ctlMutateReq{OIDs: oids, Round: lastRound}, 16+8*len(oids)); err != nil {
			fatalf("bmxd: mutate at node %v: %v", writer, err)
		}
		if o.gcEvery > 0 && r%o.gcEvery == 0 {
			st := n.CollectBunches(n.Collector().MappedBunches(), 1)
			n.FlushLocations()
			if o.verbose {
				fmt.Printf("round %d: BGC at seed: live %d, dead %d\n",
					r, st.LiveStrong+st.LiveWeak, st.Dead)
			}
			for _, id := range others {
				raw, err := p.Control(id, "ctl.collect", ctlAck{}, 8)
				if err != nil {
					fatalf("bmxd: collect at node %v: %v", id, err)
				}
				if o.verbose {
					fmt.Printf("round %d: BGC at node %v: dead %d\n", r, id, raw.(ctlAck).N)
				}
			}
		}
		p.Cluster().Sample()
	}

	// Convergence: the seed re-acquires every still-reachable object and
	// must read the last commanded writer's values through whatever copies,
	// forwards and relocations the rounds produced. Objects severed by the
	// cuts are the collectors' business, not the audit's.
	mismatches := 0
	for i, r := range lastLive {
		if err := n.AcquireRead(r); err != nil {
			fatalf("bmxd: final acquire %v: %v", r, err)
		}
		sz, err := n.Size(r)
		if err != nil {
			fatalf("bmxd: final size %v: %v", r, err)
		}
		v, err := n.ReadWord(r, sz-1)
		if err != nil {
			fatalf("bmxd: final read %v: %v", r, err)
		}
		n.Release(r)
		if v != mutatedValue(lastRound, i) {
			mismatches++
			fmt.Fprintf(os.Stderr, "bmxd: object %v: read %d, want %d\n", r, v, mutatedValue(lastRound, i))
		}
	}

	// Independence probes, every process; while here, sum the reclaim
	// counters — with links cut the cluster must actually have collected
	// something, or the death-protocol exercise was vacuous.
	failures := 0
	seedCounters := p.Cluster().Stats().Snapshot()
	deadTotal := seedCounters["core.gc.dead"]
	if msg, ok := auditIndependence(seedCounters); !ok {
		failures++
		fmt.Fprintf(os.Stderr, "bmxd: seed FAILED: %s\n", msg)
	}
	for _, id := range others {
		raw, err := p.Control(id, "ctl.stats", ctlAck{}, 8)
		if err != nil {
			fatalf("bmxd: stats at node %v: %v", id, err)
		}
		c := raw.(ctlStatsReply).Counters
		deadTotal += c["core.gc.dead"]
		if msg, ok := auditIndependence(c); !ok {
			failures++
			fmt.Fprintf(os.Stderr, "bmxd: node %v FAILED: %s\n", id, msg)
		}
	}
	if cuts > 0 && o.gcEvery > 0 && deadTotal == 0 {
		failures++
		fmt.Fprintf(os.Stderr, "bmxd: FAILED: %d links cut but no process reclaimed anything\n", cuts)
	}

	// Harvest every process's heat table before shutting them down; the
	// merge resolves each object's owner by the highest Lamport tick, the
	// same rule bmxstat -heat applies to trace files.
	heatParts := [][]heat.Row{p.Cluster().Heat().Snapshot()}
	for _, id := range others {
		raw, err := p.Control(id, "ctl.heat", ctlAck{}, 8)
		if err != nil {
			fatalf("bmxd: heat at node %v: %v", id, err)
		}
		heatParts = append(heatParts, raw.(ctlHeatReply).Rows)
	}
	mergedHeat := heat.Merge(heatParts...)

	for _, id := range others {
		if _, err := p.Control(id, "ctl.shutdown", ctlAck{}, 8); err != nil {
			fmt.Fprintf(os.Stderr, "bmxd: shutdown at node %v: %v\n", id, err)
		}
	}
	writePeerTrace(p, o.traceOut)

	st := p.Cluster().Stats()
	fmt.Printf("multi-process cluster: %d processes, %d objects (%d cut, %d live), %d rounds, workload %s, %d reclaimed\n",
		p.Size(), len(g.Objects), cuts, len(lastLive), o.rounds, o.workload, deadTotal)
	fmt.Printf("seed app messages %d, gc messages %d, piggyback bytes %d\n",
		st.Get("msg.sent.app"), st.Get("msg.sent.gc"), st.Get("bytes.piggyback"))
	if mismatches != 0 || failures != 0 {
		fatalf("bmxd: FAILED: %d stale reads, %d probe violations", mismatches, failures)
	}
	fmt.Println("SUCCESS: converged across processes; collector acquired zero tokens everywhere")
	intr.finish(p.Cluster(), mergedHeat)
}

// reachable walks the seed's edge model from the root and returns the
// still-live objects in allocation order.
func reachable(g trace.Graph, edges map[addr.OID][]bmx.Ref) []bmx.Ref {
	seen := map[addr.OID]bool{g.Root.OID: true}
	stack := []bmx.Ref{g.Root}
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range edges[o.OID] {
			if !t.IsNil() && !seen[t.OID] {
				seen[t.OID] = true
				stack = append(stack, t)
			}
		}
	}
	live := make([]bmx.Ref, 0, len(seen))
	for _, o := range g.Objects {
		if seen[o.OID] {
			live = append(live, o)
		}
	}
	return live
}

// auditIndependence applies the §5 counter probe to one process's counters.
func auditIndependence(c map[string]int64) (string, bool) {
	if n := c["dsm.acquire.r.gc"] + c["dsm.acquire.w.gc"]; n != 0 {
		return fmt.Sprintf("collector acquired %d tokens", n), false
	}
	if n := c["dsm.invalidation.gc"]; n != 0 {
		return fmt.Sprintf("collector caused %d invalidations", n), false
	}
	return "", true
}

// writePeerTrace dumps this process's flight-recorder window as NDJSON,
// followed by its heat-table rows in the same stream. Events are stamped
// with the transport's Lamport clock, so the per-process files merge into
// one causally ordered stream (bmxstat -trace a,b,c), and the heat rows'
// ownership marks merge by the same ticks (bmxstat -heat -trace a,b,c).
func writePeerTrace(p *bmx.Peer, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("bmxd: %v", err)
	}
	defer f.Close()
	if err := obs.DumpJSON(f, p.Cluster().Observer().Events()); err != nil {
		fatalf("bmxd: %v", err)
	}
	if err := heat.WriteRowsNDJSON(f, p.Cluster().Heat().Snapshot()); err != nil {
		fatalf("bmxd: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// splitPeers parses the -peers list.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
