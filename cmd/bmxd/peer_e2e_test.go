package main

// End-to-end test of the multi-process mode: build the real bmxd binary
// once, start three processes over loopback, and require the seed's
// convergence audit to pass. The per-process NDJSON traces are then merged
// and the paper's structural probes re-asserted offline — §5 (the collector
// initiates no token acquire, no invalidation) and §4.4 (no GC-class
// message on the application's critical path beyond the sanctioned
// scion-message) — exactly the checks the simulated cluster's flight
// recorder enforces in-process.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"bmx/internal/obs"
	"bmx/internal/obs/heat"
)

var (
	buildOnce sync.Once
	buildPath string
	buildErr  error
)

// bmxdBinary builds the command under test once per test-process run.
func bmxdBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "bmxd-e2e-")
		if err != nil {
			buildErr = err
			return
		}
		buildPath = filepath.Join(dir, "bmxd")
		cmd := exec.Command("go", "build", "-o", buildPath, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildPath
}

// reserveAddrs picks n distinct loopback addresses by binding ephemeral
// listeners and releasing them just before the processes start.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	var ls []net.Listener
	var addrs []string
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls = append(ls, l)
		addrs = append(addrs, l.Addr().String())
	}
	for _, l := range ls {
		l.Close()
	}
	return addrs
}

func TestThreeProcessClusterConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e is not -short")
	}
	bin := bmxdBinary(t)
	addrs := reserveAddrs(t, 3)
	dir := t.TempDir()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	type proc struct {
		addr  string
		trace string
		cmd   *exec.Cmd
		out   strings.Builder
	}
	procs := make([]*proc, len(addrs))
	for i, a := range addrs {
		var peers []string
		for j, b := range addrs {
			if j != i {
				peers = append(peers, b)
			}
		}
		p := &proc{addr: a, trace: filepath.Join(dir, fmt.Sprintf("trace-%d.ndjson", i))}
		p.cmd = exec.CommandContext(ctx, bin,
			"-listen", a, "-peers", strings.Join(peers, ","),
			"-workload", "tree", "-objects", "40", "-rounds", "8", "-gc-every", "2",
			"-trace-out", p.trace)
		p.cmd.Stdout = &p.out
		p.cmd.Stderr = &p.out
		procs[i] = p
	}
	// Start order is irrelevant — every process dials every peer with
	// reconnect/backoff until the mesh is up.
	for _, p := range procs {
		if err := p.cmd.Start(); err != nil {
			t.Fatal(err)
		}
	}
	failed := false
	for _, p := range procs {
		if err := p.cmd.Wait(); err != nil {
			failed = true
			t.Errorf("process on %s failed: %v", p.addr, err)
		} else if !strings.Contains(p.out.String(), "SUCCESS") {
			failed = true
			t.Errorf("process on %s exited 0 without SUCCESS", p.addr)
		}
	}
	if failed {
		// Dump every process's output: a wedged follower usually means the
		// seed died or stalled first, and only the full picture shows it.
		for _, p := range procs {
			t.Logf("---- output of %s ----\n%s", p.addr, p.out.String())
		}
		t.FailNow()
	}
	// The seed is the process with the smallest address; it prints the
	// cluster-wide convergence line.
	sorted := append([]string(nil), addrs...)
	sort.Strings(sorted)
	for _, p := range procs {
		if p.addr == sorted[0] && !strings.Contains(p.out.String(), "converged across processes") {
			t.Fatalf("seed output misses the convergence audit:\n%s", p.out.String())
		}
	}

	// Merge the per-process traces on the Lamport tick and re-assert the
	// paper's claims offline. The loose reader skips the heat rows each
	// capture now ends with; those are parsed separately below.
	var evs []obs.Event
	var heatParts [][]heat.Row
	for _, p := range procs {
		f, err := os.Open(p.trace)
		if err != nil {
			t.Fatal(err)
		}
		part, err := obs.ReadEventsNDJSONLoose(f)
		f.Close()
		if err != nil {
			t.Fatalf("trace %s: %v", p.trace, err)
		}
		if len(part) == 0 {
			t.Fatalf("trace %s is empty", p.trace)
		}
		evs = append(evs, part...)

		f, err = os.Open(p.trace)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := heat.ReadRowsNDJSONLoose(f)
		f.Close()
		if err != nil {
			t.Fatalf("heat rows %s: %v", p.trace, err)
		}
		if len(rows) == 0 {
			t.Fatalf("trace %s carries no heat rows", p.trace)
		}
		heatParts = append(heatParts, rows)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Tick < evs[j].Tick })

	// The heat tables of the three processes must merge into one cluster-wide
	// locality picture: writes rotated across processes, so at least one
	// object must end the run owned by a node other than its dominant writer,
	// with its remote-access ratio attached — the heatmap's whole deliverable.
	rep := heat.Analyze(heat.Merge(heatParts...))
	if rep.TrackedObjects == 0 || rep.TotalAccesses == 0 {
		t.Fatalf("merged heat table is empty: %+v", rep)
	}
	if rep.RemoteAcquires == 0 {
		t.Fatal("merged heat table saw no remote acquires in a 3-process run")
	}
	if len(rep.Mismatches) == 0 {
		t.Fatal("merged heat table names no owner/dominant-writer mismatch")
	}
	m := rep.Mismatches[0]
	t.Logf("heat: %d objects, remote ratio %.2f; top mismatch O%d owner N%d dominant N%d (ratio %.2f)",
		rep.TrackedObjects, rep.RemoteRatio, m.OID, m.Owner, m.Dominant, m.RemoteRatio)

	// If any assertion below fails, leave the merged stream where CI can
	// upload it: `bmxstat -trace <artifact> -spans` then reconstructs the
	// exact trees this test saw.
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		path := os.Getenv("BMX_SPAN_ARTIFACT")
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			t.Logf("span artifact: %v", err)
			return
		}
		defer f.Close()
		if err := obs.DumpJSON(f, evs); err != nil {
			t.Logf("span artifact: %v", err)
			return
		}
		t.Logf("merged trace with span events written to %s", path)
	})

	// The stream must carry both sides of the mixed run, or the claims
	// below would hold vacuously.
	var sawGC, sawCriticalApp bool
	for _, e := range evs {
		if e.Kind == obs.KGCStart {
			sawGC = true
		}
		if e.Kind == obs.KCall && e.Class == obs.ClassApp && e.Critical() {
			sawCriticalApp = true
		}
	}
	if !sawGC || !sawCriticalApp {
		t.Fatalf("merged stream misses one side of the run: gc=%v criticalApp=%v (%d events)",
			sawGC, sawCriticalApp, len(evs))
	}

	// §5: zero collector-initiated acquires and invalidations, across all
	// three processes.
	if bad := obs.CollectorAcquires(evs); len(bad) != 0 {
		t.Fatalf("collector initiated %d token acquires; first: %v", len(bad), bad[0])
	}
	if bad := obs.CollectorInvalidations(evs); len(bad) != 0 {
		t.Fatalf("collector caused %d invalidations; first: %v", len(bad), bad[0])
	}
	// §4.4: nothing GC-class rides the critical path except the sanctioned
	// scion-message (the single-bunch tree workload typically emits none
	// at all).
	crit := obs.CriticalGCMessages(evs)
	if bad := obs.NonScion(crit); len(bad) != 0 {
		t.Fatalf("%d non-piggybacked GC messages on the critical path; first: %v", len(bad), bad[0])
	}

	// Span stitching: the three captures must reconstruct at least one
	// COMPLETE cross-process acquire tree — an acquire span whose descendants
	// include a serve.acquire on another process, with no orphaned span and
	// every begin paired with its end. A missing wire hop or a broken ID
	// would surface here as an orphan.
	traces := obs.BuildSpanTraces(evs)
	if len(traces) == 0 {
		t.Fatal("merged stream carries no span events (tracing was on via -trace-out)")
	}
	completeCross := 0
	for _, tr := range traces {
		if tr.Complete() && tr.CrossProcess() {
			completeCross++
			// The paper's §4.4, per trace: an acquire tree must carry no
			// non-scion GC-class message inside its critical-path spans.
			if v := tr.Verdict(); !v.Clean() {
				t.Errorf("trace %x: %d GC-class messages inside critical-path spans; first: %v",
					tr.ID, len(v.GCMessages), v.GCMessages[0])
			}
		}
	}
	if completeCross == 0 {
		orphans := 0
		for _, tr := range traces {
			orphans += len(tr.Orphans)
		}
		t.Fatalf("no complete cross-process acquire trace stitched from %d traces (%d orphaned spans)",
			len(traces), orphans)
	}
	t.Logf("span stitching: %d traces, %d complete cross-process acquire trees", len(traces), completeCross)
}
