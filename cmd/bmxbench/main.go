// Command bmxbench regenerates the reproduction's experiment tables
// (EXPERIMENTS.md): the measurable claims of the paper's §§4-8, each checked
// against the baselines the paper names, plus the two design ablations.
//
// Usage:
//
//	bmxbench            # run everything
//	bmxbench -exp e1,e5 # run a subset
//	bmxbench -list      # list experiment ids and titles
//
// Exit status is non-zero if any experiment's measured data violates the
// shape the paper predicts.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bmx/internal/exp"
)

// writeCSV dumps one experiment table as <dir>/<id>.csv.
func writeCSV(dir string, t exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, strings.ToLower(t.ID)+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(t.Header); err != nil {
		return err
	}
	if err := w.WriteAll(t.Rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

var experiments = []struct {
	id  string
	run func() exp.Table
}{
	{"f1", exp.RunF1}, {"f2", exp.RunF2}, {"f3", exp.RunF3}, {"f4", exp.RunF4},
	{"e1", exp.RunE1}, {"e2", exp.RunE2}, {"e3", exp.RunE3},
	{"e4", exp.RunE4}, {"e5", exp.RunE5}, {"e6", exp.RunE6},
	{"e7", exp.RunE7}, {"e8", exp.RunE8}, {"e9", exp.RunE9}, {"e10", exp.RunE10},
	{"a1", exp.RunA1}, {"a2", exp.RunA2}, {"a3", exp.RunA3}, {"a4", exp.RunA4},
	{"a5", exp.RunA5},
}

func main() {
	which := flag.String("exp", "all", "comma-separated ids (f1..f4, e1..e10, a1..a5) or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	csvOut := flag.String("csv", "", "also write every table as CSV to this directory")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			t := e.run // don't run; titles live in the Table, so describe by id
			_ = t
			fmt.Printf("%s\n", strings.ToUpper(e.id))
		}
		fmt.Println("see EXPERIMENTS.md for the per-experiment index")
		return
	}

	want := map[string]bool{}
	if *which != "all" {
		for _, id := range strings.Split(*which, ",") {
			want[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}

	failed := 0
	ran := 0
	for _, e := range experiments {
		if *which != "all" && !want[e.id] {
			continue
		}
		ran++
		t := e.run()
		fmt.Println(t.String())
		if *csvOut != "" {
			if err := writeCSV(*csvOut, t); err != nil {
				fmt.Fprintf(os.Stderr, "bmxbench: csv: %v\n", err)
				os.Exit(1)
			}
		}
		if !t.Pass {
			failed++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "bmxbench: no experiment matches %q\n", *which)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "bmxbench: %d experiment(s) violated the predicted shape\n", failed)
		os.Exit(1)
	}
	fmt.Printf("all %d experiment(s) match the paper's predicted shapes\n", ran)
}
