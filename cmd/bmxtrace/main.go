// Command bmxtrace builds the configurations of the paper's four figures
// through the real protocol stack and prints the resulting system state —
// token letters (r/w/i, with o marking the owner as the figures' thicker
// boxes), stub and scion tables, ownerPtrs — then steps through the
// collection events the figure or its caption describes.
//
// Usage:
//
//	bmxtrace -fig 1   # Figure 1: bunches, SSPs, intra-bunch forwarding
//	bmxtrace -fig 2   # Figure 2: the BGC at N2 copies only owned objects
//	bmxtrace -fig 3   # Figure 3: write-token acquire cases (a)-(d)
//	bmxtrace -fig 4   # Figure 4: the §6.2 deletion chain
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bmx"
	"bmx/internal/addr"
)

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce (1-4); 0 runs all")
	flag.Parse()
	figs := []func(){figure1, figure2, figure3, figure4}
	switch {
	case *fig == 0:
		for i, f := range figs {
			fmt.Printf("════════ Figure %d ════════\n", i+1)
			f()
			fmt.Println()
		}
	case *fig >= 1 && *fig <= 4:
		figs[*fig-1]()
	default:
		fmt.Fprintln(os.Stderr, "bmxtrace: -fig must be 0..4")
		os.Exit(2)
	}
}

// dump prints every named object's state at every node, and the SSP tables.
func dump(cl *bmx.Cluster, names map[string]bmx.Ref, bunches map[string]bmx.BunchID) {
	var objNames []string
	byOID := make(map[bmx.OID]string)
	for n, r := range names {
		objNames = append(objNames, n)
		byOID[r.OID] = n
	}
	label := func(o bmx.OID) string {
		if n, ok := byOID[o]; ok {
			return n
		}
		return o.String()
	}
	sortStrings(objNames)
	var bNames []string
	for n := range bunches {
		bNames = append(bNames, n)
	}
	sortStrings(bNames)

	fmt.Printf("%-6s", "")
	for i := 0; i < cl.Nodes(); i++ {
		fmt.Printf("  %-8s", addr.NodeID(i))
	}
	fmt.Println()
	for _, on := range objNames {
		o := names[on]
		fmt.Printf("%-6s", on)
		for i := 0; i < cl.Nodes(); i++ {
			nd := cl.Node(i)
			letter := "-"
			if _, present := nd.Collector().Heap().Canonical(o.OID); present {
				letter = nd.Mode(o).String()
				if nd.IsOwner(o) {
					letter += "/o"
				}
			}
			fmt.Printf("  %-8s", letter)
		}
		fmt.Println()
	}
	for _, bn := range bNames {
		b := bunches[bn]
		for i := 0; i < cl.Nodes(); i++ {
			tab := cl.Node(i).Collector().Replica(b).Table
			var parts []string
			for _, s := range tab.InterStubList() {
				parts = append(parts, fmt.Sprintf("stub(%s->%s, scion at %v)",
					label(s.SrcOID), label(s.TargetOID), s.ScionNode))
			}
			for _, s := range tab.InterScionList() {
				parts = append(parts, fmt.Sprintf("scion(%s<-%s at %v)",
					label(s.TargetOID), label(s.SrcOID), s.SrcNode))
			}
			for _, s := range tab.IntraStubList() {
				parts = append(parts, fmt.Sprintf("intra-stub(%s->old owner %v)", label(s.OID), s.OldOwner))
			}
			for _, s := range tab.IntraScionList() {
				parts = append(parts, fmt.Sprintf("intra-scion(%s<-new owner %v)", label(s.OID), s.NewOwner))
			}
			if len(parts) > 0 {
				fmt.Printf("  %s at %v: %s\n", bn, addr.NodeID(i), strings.Join(parts, ", "))
			}
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bmxtrace:", err)
		os.Exit(1)
	}
}

func figure1() {
	fmt.Println("B1 mapped on N1 and N2; B2 mapped only on N3. The reference")
	fmt.Println("O3->O5 is created at N2; then O3's write token moves to N1.")
	cl := bmx.New(bmx.Config{Nodes: 3, SegWords: 64, Seed: 1})
	n1, n2, n3 := cl.Node(0), cl.Node(1), cl.Node(2)
	b1 := n1.NewBunch()
	b2 := n3.NewBunch()
	o1 := n1.MustAlloc(b1, 2)
	o3 := n1.MustAlloc(b1, 2)
	o5 := n3.MustAlloc(b2, 1)
	n1.AddRoot(o1)
	n3.AddRoot(o5)
	must(n1.WriteRef(o1, 0, o3))
	must(n2.MapBunch(b1))
	must(n2.AcquireWrite(o3))
	must(n2.AcquireRead(o5))
	must(n2.WriteRef(o3, 0, o5))
	must(n1.AcquireWrite(o3))
	dump(cl,
		map[string]bmx.Ref{"O1": o1, "O3": o3, "O5": o5},
		map[string]bmx.BunchID{"B1": b1, "B2": b2})
	fmt.Println("Only ONE inter-bunch stub exists (at N2) although O3 is cached")
	fmt.Println("on two nodes; the intra-bunch SSP (stub at N1, scion at N2)")
	fmt.Println("forwards O3's liveness to the stub at the old owner.")
}

func figure2() {
	fmt.Println("B1 on N1 and N2 with O1->O2->O3; N1 owns O1 and O3, N2 owns O2.")
	cl := bmx.New(bmx.Config{Nodes: 2, SegWords: 64, Seed: 1})
	n1, n2 := cl.Node(0), cl.Node(1)
	b := n1.NewBunch()
	o1 := n1.MustAlloc(b, 2)
	o2 := n1.MustAlloc(b, 2)
	o3 := n1.MustAlloc(b, 2)
	n1.AddRoot(o1)
	must(n1.WriteRef(o1, 0, o2))
	must(n1.WriteRef(o2, 0, o3))
	must(n2.MapBunch(b))
	n2.AddRoot(o1)
	must(n2.AcquireWrite(o2))
	heap2 := n2.Collector().Heap()
	oldO2, _ := heap2.Canonical(o2.OID)
	fmt.Println("before BGC at N2:")
	dump(cl, map[string]bmx.Ref{"O1": o1, "O2": o2, "O3": o3}, map[string]bmx.BunchID{"B1": b})

	st := n2.CollectBunch(b)
	newO2, _ := heap2.Canonical(o2.OID)
	fmt.Printf("\nBGC at N2: copied %d object(s) (only locally-owned O2), scanned %d\n", st.Copied, st.Scanned)
	fmt.Printf("O2 at N2 moved %v -> %v; forwarding pointer left behind: %v\n",
		oldO2, newO2, heap2.Fwd(oldO2))
	n1O2, _ := n1.Collector().Heap().Canonical(o2.OID)
	fmt.Printf("N1 not yet informed: O2 at N1 still %v\n", n1O2)
	must(n1.AcquireRead(o2))
	n1O2, _ = n1.Collector().Heap().Canonical(o2.OID)
	fmt.Printf("after N1 synchronizes (token acquire): O2 at N1 = %v (piggybacked, no GC message)\n", n1O2)
}

func figure3() {
	fmt.Println("Bunch B on N1 and N2 with O1->O2, both owned at N1.")
	fmt.Println("Write-token acquire cases after collections:")
	for _, c := range []struct {
		name  string
		setup func(cl *bmx.Cluster, b bmx.BunchID, o1, o2 bmx.Ref)
	}{
		{"(a) nothing copied anywhere", func(cl *bmx.Cluster, b bmx.BunchID, o1, o2 bmx.Ref) {}},
		{"(b)+(c) O1 and O2 copied at the granter N1", func(cl *bmx.Cluster, b bmx.BunchID, o1, o2 bmx.Ref) {
			cl.Node(0).CollectBunch(b)
		}},
		{"(d) O2 copied at the acquirer N2", func(cl *bmx.Cluster, b bmx.BunchID, o1, o2 bmx.Ref) {
			must(cl.Node(1).AcquireWrite(o2))
			cl.Node(1).CollectBunch(b)
		}},
	} {
		cl := bmx.New(bmx.Config{Nodes: 2, SegWords: 64, Seed: 1})
		n1, n2 := cl.Node(0), cl.Node(1)
		b := n1.NewBunch()
		o1 := n1.MustAlloc(b, 2)
		o2 := n1.MustAlloc(b, 2)
		n1.AddRoot(o1)
		must(n1.WriteRef(o1, 0, o2))
		must(n2.MapBunch(b))
		n2.AddRoot(o1)
		must(n2.AcquireRead(o1))
		must(n2.AcquireRead(o2))
		c.setup(cl, b, o1, o2)

		loc0 := cl.Stats().Get("core.loc.applied")
		must(n2.AcquireWrite(o1))
		locs := cl.Stats().Get("core.loc.applied") - loc0
		a1, _ := n2.Collector().Heap().Canonical(o1.OID)
		a2, _ := n2.Collector().Heap().Canonical(o2.OID)
		r, err := n2.ReadRef(o1, 0)
		must(err)
		fmt.Printf("  %s:\n    acquire applied %d location update(s); at N2: O1=%v O2=%v; O1.0 resolves to %v\n",
			c.name, locs, a1, a2, r)
	}
	fmt.Println("In every case the acquire completes only after all addresses are valid (invariant 1).")
}

func figure4() {
	fmt.Println("O1 cached on N1, N2 and N3; owner N2; N3 holds an inter-bunch")
	fmt.Println("stub for O1 and is kept alive only by the intra-bunch scion.")
	cl := bmx.New(bmx.Config{Nodes: 3, SegWords: 64, Seed: 1})
	n1, n2, n3 := cl.Node(0), cl.Node(1), cl.Node(2)
	bOther := n1.NewBunch()
	other := n1.MustAlloc(bOther, 1)
	n1.AddRoot(other)
	b := n3.NewBunch()
	o1 := n3.MustAlloc(b, 1)
	must(n3.AcquireRead(other))
	must(n3.WriteRef(o1, 0, other))
	must(n2.MapBunch(b))
	must(n2.AcquireWrite(o1))
	must(n1.MapBunch(b))
	must(n1.AcquireRead(o1))
	n1.AddRoot(o1)
	names := map[string]bmx.Ref{"O1": o1}
	bs := map[string]bmx.BunchID{"B": b}
	fmt.Println("\ninitial state:")
	dump(cl, names, bs)

	step := func(msg string, f func()) {
		fmt.Printf("\n%s\n", msg)
		f()
		cl.Run(0)
		dump(cl, names, bs)
	}
	step("BGC at N3: exiting ownerPtr N3->N2 omitted (O1 weak there); O1 survives via intra-scion", func() {
		n3.CollectBunch(b)
	})
	step("reference deleted from N1's root; BGC at N1 reclaims O1 there", func() {
		n1.RemoveRoot(o1)
		n1.CollectBunch(b)
	})
	step("BGC at N2: last entering ownerPtr gone, O1 reclaimed, intra-stub dropped", func() {
		n2.CollectBunch(b)
	})
	step("cleaner deleted N3's intra-scion; BGC at N3 reclaims the last replica", func() {
		n3.CollectBunch(b)
	})
}
