// Command bmxstat is the offline trace analyzer: it reads the flight
// recorder's NDJSON event stream (a `bmxd -trace-json` capture or an
// /events download) and/or the time-series sampler's NDJSON (`-series-json`
// or /series), and prints what a run actually did — the hot objects, the
// acquire-path and critical-path breakdowns, the per-phase GC cost, the
// biography of one object, or an A/B comparison of two runs.
//
// Examples:
//
//	bmxd -nodes 3 -rounds 6 -workload tree -seed 5 -trace-json > run.ndjson
//	bmxstat -trace run.ndjson                 # overview: top objects, hops, GC
//	bmxstat -trace run.ndjson -oid O36        # one object's biography
//	bmxstat -trace run.ndjson -top 20         # more hot objects
//	bmxstat -series a.ndjson -diff b.ndjson   # A/B two runs' series
//	bmxstat -trace n0.ndjson,n1.ndjson -spans # cross-process span trees
//	bmxstat -trace n0.ndjson,n1.ndjson -heat  # merged access heatmap + locality
//	bmxstat -bench BENCH_6_flip.json -ref BENCH_REF.json -gate 25  # perf gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"
	"strings"

	"bmx/internal/addr"
	"bmx/internal/introspect"
	"bmx/internal/obs"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bmxstat:", err)
	os.Exit(1)
}

func open(path string) io.ReadCloser {
	if path == "-" {
		return os.Stdin
	}
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	return f
}

func main() {
	var (
		tracePath  = flag.String("trace", "", "event NDJSON to analyze (a bmxd -trace-json capture or an /events download; - for stdin)")
		seriesPath = flag.String("series", "", "time-series NDJSON to analyze (a bmxd -series-json file or a /series download; - for stdin)")
		benchPath  = flag.String("bench", "", "benchmark summary JSON to analyze (a bmxd -bench-json artifact; - for stdin)")
		diffPath   = flag.String("diff", "", "second run to compare against -series (time-series NDJSON) or -bench (summary JSON); prints an A/B comparison")
		oidFlag    = flag.String("oid", "", "print the biography of this object (accepts 36 or O36)")
		topN       = flag.Int("top", 10, "how many hot objects the overview lists (and how many slowest acquires -spans renders)")
		asJSON     = flag.Bool("json", false, "machine-readable output")
		spansFlag  = flag.Bool("spans", false, "reconstruct cross-process span trees from -trace (comma-separated per-process captures) and print latency attribution plus the per-trace §4.4 verdict")
		heatFlag   = flag.Bool("heat", false, "merge the heat rows of -trace (comma-separated per-process captures or /heat downloads) and print the cluster-wide locality report")
		refPath    = flag.String("ref", "", "benchmark reference document (BENCH_REF.json) for -gate")
		gatePct    = flag.Float64("gate", 0, "with -bench and -ref: allowed upward drift in percent; exits 1 when a gated metric regressed further")
		makeRefFlg = flag.Bool("make-ref", false, "merge the -bench list (comma-separated envelopes) into a reference document on stdout")
	)
	flag.Parse()
	if *tracePath == "" && *seriesPath == "" && *benchPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *makeRefFlg {
		if *benchPath == "" {
			fail(fmt.Errorf("-make-ref needs -bench with the envelope list"))
		}
		makeRef(*benchPath)
		return
	}
	if *gatePct > 0 {
		if *benchPath == "" || *refPath == "" {
			fail(fmt.Errorf("-gate needs -bench and -ref"))
		}
		runGate(*benchPath, *refPath, *gatePct)
		return
	}
	if *heatFlag {
		// Heat mode parses its own rows (a /heat download has no events at
		// all), so it runs before the event reader and its emptiness check.
		if *tracePath == "" {
			fail(fmt.Errorf("-heat needs -trace"))
		}
		printHeat(*tracePath, *topN, *asJSON)
		return
	}

	var evs []obs.Event
	if *tracePath != "" {
		// -trace accepts a comma-separated list: the per-process captures
		// of a multi-process run (bmxd -trace-out) merge into one stream,
		// ordered by the transport's Lamport tick.
		paths := strings.Split(*tracePath, ",")
		for _, p := range paths {
			r := open(p)
			part, err := obs.ReadEventsNDJSONLoose(r)
			r.Close()
			if err != nil {
				fail(err)
			}
			evs = append(evs, part...)
		}
		if len(evs) == 0 {
			fail(fmt.Errorf("%s contains no events (was the run traced with -trace-json?)", *tracePath))
		}
		if len(paths) > 1 {
			sort.SliceStable(evs, func(i, j int) bool { return evs[i].Tick < evs[j].Tick })
		}
	}
	var samples []obs.Sample
	if *seriesPath != "" {
		r := open(*seriesPath)
		var err error
		samples, err = obs.ReadSamplesNDJSON(r)
		r.Close()
		if err != nil {
			fail(err)
		}
	}

	switch {
	case *spansFlag:
		if evs == nil {
			fail(fmt.Errorf("-spans needs -trace"))
		}
		printSpans(evs, *topN, *asJSON)
	case *oidFlag != "":
		if evs == nil {
			fail(fmt.Errorf("-oid needs -trace"))
		}
		oid, err := introspect.ParseOID(*oidFlag)
		if err != nil {
			fail(err)
		}
		printBiography(evs, oid, *asJSON)
	case *benchPath != "":
		a := readBench(*benchPath)
		if *diffPath != "" {
			printDiff(a, readBench(*diffPath), *benchPath, *diffPath, *asJSON)
			return
		}
		if *asJSON {
			emitJSON(a)
			return
		}
		printBench(a)
	case *diffPath != "":
		if samples == nil {
			fail(fmt.Errorf("-diff needs -series or -bench"))
		}
		r := open(*diffPath)
		other, err := obs.ReadSamplesNDJSON(r)
		r.Close()
		if err != nil {
			fail(err)
		}
		printDiff(obs.BenchOf(samples), obs.BenchOf(other), *seriesPath, *diffPath, *asJSON)
	default:
		printOverview(evs, samples, *topN, *asJSON)
	}
}

// printBiography tells one object's story, flagging any ownerPtr cycle the
// trail contains (the O36 failure shape).
func printBiography(evs []obs.Event, oid addr.OID, asJSON bool) {
	bio := obs.BiographyOf(evs, oid)
	if len(bio.Entries) == 0 {
		fail(fmt.Errorf("no events for %v in this trace", oid))
	}
	if asJSON {
		emitJSON(introspect.BioJSON(bio))
		return
	}
	fmt.Printf("biography of %v — %d events\n", oid, len(bio.Entries))
	if len(bio.Owners) > 0 {
		fmt.Print("ownership timeline:")
		for _, n := range bio.Owners {
			fmt.Printf(" %v", n)
		}
		fmt.Println()
	}
	if len(bio.Trail) > 0 {
		fmt.Printf("ownerPtr hop trail (%d forwards):", len(bio.Trail))
		for _, n := range bio.Trail {
			fmt.Printf(" %v", n)
		}
		fmt.Println()
	}
	if len(bio.Cycle) != 0 {
		fmt.Printf("!! ROUTING CYCLE in the hop trail: %v — stale ownerPtr edges looped\n", bio.Cycle)
	}
	fmt.Println()
	for _, en := range bio.Entries {
		fmt.Printf("%8d %6d  %s\n", en.Event.Seq, en.Event.Tick, en.What)
	}
}

// overviewJSON is the -json shape of the default report.
type overviewJSON struct {
	Hot    []obs.HotObject   `json:"hot,omitempty"`
	Hops   *obs.HopStats     `json:"hops,omitempty"`
	Crit   *obs.CritStats    `json:"crit,omitempty"`
	GC     *obs.GCStats      `json:"gc,omitempty"`
	Series *obs.BenchSummary `json:"series,omitempty"`
}

func printOverview(evs []obs.Event, samples []obs.Sample, topN int, asJSON bool) {
	var doc overviewJSON
	if evs != nil {
		hops := obs.HopsOf(evs)
		crit := obs.CritOf(evs)
		gc := obs.GCOf(evs)
		doc.Hot = obs.HotObjects(evs, topN)
		doc.Hops, doc.Crit, doc.GC = &hops, &crit, &gc
	}
	if samples != nil {
		b := obs.BenchOf(samples)
		doc.Series = &b
	}
	if asJSON {
		emitJSON(doc)
		return
	}
	if evs != nil {
		fmt.Printf("-- hot objects (top %d of the trace) --\n", topN)
		fmt.Printf("%-8s %9s %9s %6s %9s\n", "oid", "acquires", "hops", "moves", "events")
		for _, h := range doc.Hot {
			fmt.Printf("%-8v %9d %9d %6d %9d\n", h.OID, h.Acquires, h.Hops, h.Transfers, h.Events)
		}
		fmt.Println()
		fmt.Println("-- acquire paths --")
		fmt.Printf("remote grants %d, local fast path %d, reroutes %d, stale routes avoided %d\n",
			doc.Hops.Grants, doc.Hops.LocalFast, doc.Hops.Reroutes, doc.Hops.Cycles)
		hq := doc.Hops.Hops.Summary()
		if hq.Count > 0 {
			fmt.Printf("chain hops: p50<=%d p95<=%d p99<=%d max=%d\n", hq.P50, hq.P95, hq.P99, hq.Max)
		}
		fmt.Println()
		fmt.Println("-- critical path --")
		fmt.Printf("app calls %d, app sends %d; gc calls %d, gc sends %d (scion-messages %d)\n",
			doc.Crit.AppCalls, doc.Crit.AppSends, doc.Crit.GCCalls, doc.Crit.GCSends, doc.Crit.GCScion)
		if extra := doc.Crit.GCCalls + doc.Crit.GCSends - doc.Crit.GCScion; extra != 0 {
			fmt.Printf("!! %d non-scion GC messages on the critical path — the paper's §4.4 claim is violated\n", extra)
		}
		fmt.Println()
		fmt.Println("-- collector phases --")
		fmt.Printf("runs %d (group %d), scanned %d objects, copied %d objects / %d words, reclaimed %d (%d owner-side), %d segment words freed\n",
			doc.GC.Runs, doc.GC.GroupRuns, doc.GC.TraceScanned, doc.GC.CopiedObjects,
			doc.GC.CopiedWords, doc.GC.Reclaimed, doc.GC.OwnedReclaims, doc.GC.SegWordsFreed)
		rp, fp := doc.GC.RootsPause.Summary(), doc.GC.FlipPause.Summary()
		if rp.Count > 0 {
			fmt.Printf("pauses: roots p50<=%d max=%d ticks; flip p50<=%d max=%d ticks; total gc %d ticks\n",
				rp.P50, rp.Max, fp.P50, fp.Max, doc.GC.TotalTicks)
		}
	}
	if doc.Series != nil {
		fmt.Println()
		printBench(*doc.Series)
	}
}

func printBench(b obs.BenchSummary) {
	fmt.Printf("-- time series (%d samples, %d ticks) --\n", b.Samples, b.Ticks)
	fmt.Printf("messages per mutator op: %.2f; gc copy %d words, gc scanned %d objects\n",
		b.MsgsPerMutatorOp, b.GCCopyWords, b.GCScanObjects)
	if b.StoreSyncs > 0 {
		fmt.Printf("durability: %d store syncs, %.2f syncs/flip, %.0f log bytes/collection\n",
			b.StoreSyncs, b.SyncsPerFlip, b.LogBytesPerCollection)
	}
	if b.RemoteAccessRatio > 0 || b.OwnerMismatchCount > 0 {
		fmt.Printf("locality: remote access ratio %.2f, %d owner/dominant-writer mismatches\n",
			b.RemoteAccessRatio, b.OwnerMismatchCount)
	}
	names := make([]string, 0, len(b.Series))
	for name := range b.Series {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		qs := b.Series[name]
		f := qs.Final
		fmt.Printf("%-24s n=%-7d p50<=%-6d p95<=%-6d p99<=%-6d max=%d\n",
			name, f.Count, f.P50, f.P95, f.P99, f.Max)
	}
}

// diffJSON is the -json shape of the A/B report.
type diffJSON struct {
	A        obs.BenchSummary `json:"a"`
	B        obs.BenchSummary `json:"b"`
	Counters []counterDiff    `json:"counters"`
}

type counterDiff struct {
	Name string `json:"name"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

func printDiff(a, b obs.BenchSummary, aName, bName string, asJSON bool) {
	names := map[string]bool{}
	for k := range a.Counters {
		names[k] = true
	}
	for k := range b.Counters {
		names[k] = true
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	slices.Sort(sorted)
	var diffs []counterDiff
	for _, k := range sorted {
		if a.Counters[k] != b.Counters[k] {
			diffs = append(diffs, counterDiff{Name: k, A: a.Counters[k], B: b.Counters[k]})
		}
	}
	if asJSON {
		emitJSON(diffJSON{A: a, B: b, Counters: diffs})
		return
	}
	fmt.Printf("A = %s (%d samples), B = %s (%d samples)\n", aName, a.Samples, bName, b.Samples)
	fmt.Printf("messages per mutator op: A %.2f vs B %.2f\n", a.MsgsPerMutatorOp, b.MsgsPerMutatorOp)
	fmt.Printf("gc copy words: A %d vs B %d; gc scanned: A %d vs B %d\n",
		a.GCCopyWords, b.GCCopyWords, a.GCScanObjects, b.GCScanObjects)
	if a.StoreSyncs > 0 || b.StoreSyncs > 0 {
		fmt.Printf("store syncs: A %d vs B %d; syncs/flip: A %.2f vs B %.2f; log bytes/collection: A %.0f vs B %.0f\n",
			a.StoreSyncs, b.StoreSyncs, a.SyncsPerFlip, b.SyncsPerFlip,
			a.LogBytesPerCollection, b.LogBytesPerCollection)
	}
	fmt.Println()
	fmt.Println("-- counters that differ --")
	fmt.Printf("%-32s %12s %12s %10s\n", "counter", "A", "B", "delta")
	for _, d := range diffs {
		fmt.Printf("%-32s %12d %12d %+10d\n", d.Name, d.A, d.B, d.B-d.A)
	}
	fmt.Println()
	fmt.Println("-- final quantiles (A | B) --")
	hnames := map[string]bool{}
	for k := range a.Series {
		hnames[k] = true
	}
	for k := range b.Series {
		hnames[k] = true
	}
	hsorted := make([]string, 0, len(hnames))
	for k := range hnames {
		hsorted = append(hsorted, k)
	}
	slices.Sort(hsorted)
	for _, k := range hsorted {
		fa, fb := a.Series[k].Final, b.Series[k].Final
		fmt.Printf("%-24s p50 %d|%d  p95 %d|%d  p99 %d|%d  max %d|%d\n",
			k, fa.P50, fb.P50, fa.P95, fb.P95, fa.P99, fb.P99, fa.Max, fb.Max)
	}
}

// readBench parses a benchmark summary JSON file (the bmxd -bench-json
// artifact CI uploads).
func readBench(path string) obs.BenchSummary {
	r := open(path)
	defer r.Close()
	var b obs.BenchSummary
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		fail(fmt.Errorf("%s: %v", path, err))
	}
	return b
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}
