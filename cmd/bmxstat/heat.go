package main

import (
	"fmt"
	"strings"

	"bmx/internal/addr"
	"bmx/internal/obs/heat"
)

// Heat mode: `bmxstat -heat -trace n0.ndjson,n1.ndjson,n2.ndjson` reads the
// heat rows bmxd appends to each per-process capture (or a /heat download),
// merges them into one cluster-wide table ordered by the transport's Lamport
// tick (owner marks resolve to the latest tick across processes), and prints
// the locality report: hottest objects with their per-node access split, the
// per-bunch and per-node remote ratios, and the migration advice list —
// objects whose dominant writer is not their current owner, ranked by the
// ownerPtr hops that mismatch cost.

// readHeat loads and merges the heat rows of a comma-separated capture list.
// Event lines in the same files are skipped by the loose reader, so the input
// can be raw bmxd -trace-out / -trace-json output.
func readHeat(traceList string) []heat.Row {
	var parts [][]heat.Row
	for _, p := range strings.Split(traceList, ",") {
		r := open(p)
		rows, err := heat.ReadRowsNDJSONLoose(r)
		r.Close()
		if err != nil {
			fail(err)
		}
		parts = append(parts, rows)
	}
	return heat.Merge(parts...)
}

func printHeat(traceList string, topN int, asJSON bool) {
	rows := readHeat(traceList)
	if len(rows) == 0 {
		fail(fmt.Errorf("%s contains no heat rows (was the run traced with heat enabled?)", traceList))
	}
	rep := heat.Analyze(rows)
	if asJSON {
		emitJSON(rep)
		return
	}
	fmt.Printf("-- access heat (%d tracked objects, %d accesses) --\n",
		rep.TrackedObjects, rep.TotalAccesses)
	fmt.Printf("acquires %d, remote %d (ratio %.2f), wasted hops %d\n",
		rep.TotalAcquires, rep.RemoteAcquires, rep.RemoteRatio, rep.WastedHops)
	fmt.Println()
	fmt.Printf("-- hottest objects (top %d) --\n", topN)
	fmt.Printf("%-8s %-6s %8s %8s %8s %7s %6s %-8s %-8s\n",
		"oid", "bunch", "reads", "writes", "acquires", "remote", "ratio", "owner", "dominant")
	for i, o := range rep.Objects {
		if i >= topN {
			break
		}
		fmt.Printf("%-8v %-6v %8d %8d %8d %7d %6.2f %-8s %-8s\n",
			addr.OID(o.OID), addr.BunchID(o.Bunch), o.Reads, o.Writes, o.Acquires,
			o.Remote, o.Ratio, nodeName(o.Owner), nodeName(o.Dominant))
		for _, s := range o.PerNode {
			fmt.Printf("    %-8v %8d %8d %8d %7d\n",
				addr.NodeID(s.Node), s.Reads, s.Writes, s.Acquires, s.Remote)
		}
	}
	fmt.Println()
	fmt.Println("-- per-node locality --")
	fmt.Printf("%-8s %8s %8s %8s %7s %6s %6s\n",
		"node", "reads", "writes", "acquires", "remote", "ratio", "hops")
	for _, n := range rep.Nodes {
		fmt.Printf("%-8v %8d %8d %8d %7d %6.2f %6d\n",
			addr.NodeID(n.Node), n.Reads, n.Writes, n.Acquires, n.Remote, n.Ratio, n.Hops)
	}
	if len(rep.Bunches) > 0 {
		fmt.Println()
		fmt.Println("-- per-bunch locality --")
		fmt.Printf("%-8s %8s %9s %8s %7s %6s\n",
			"bunch", "objects", "accesses", "acquires", "remote", "ratio")
		for _, b := range rep.Bunches {
			fmt.Printf("%-8v %8d %9d %8d %7d %6.2f\n",
				addr.BunchID(b.Bunch), b.Objects, b.Accesses, b.Acquires, b.Remote, b.Ratio)
		}
	}
	fmt.Println()
	if len(rep.Mismatches) == 0 {
		fmt.Println("-- migration advice: none (every object is owned by its dominant writer) --")
		return
	}
	fmt.Printf("-- migration advice (%d owner/dominant-writer mismatches) --\n", len(rep.Mismatches))
	for _, m := range rep.Mismatches {
		fmt.Printf("%v: owner %v, dominant writer %v (writes %d), remote ratio %.2f, wasted hops %d\n",
			addr.OID(m.OID), addr.NodeID(m.Owner), addr.NodeID(m.Dominant),
			m.Writes, m.RemoteRatio, m.WastedHops)
	}
}

// nodeName renders the report's int32 node columns, where -1 means unknown.
func nodeName(n int32) string {
	if n < 0 {
		return "-"
	}
	return addr.NodeID(n).String()
}
