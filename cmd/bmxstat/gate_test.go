package main

import (
	"strings"
	"testing"

	"bmx/internal/obs"
)

func refSummary() obs.BenchSummary {
	return obs.BenchSummary{
		MsgsPerMutatorOp:   2.0,
		GCCopyWords:        10000,
		SyncsPerFlip:       1.0,
		RemoteAccessRatio:  0.5,
		OwnerMismatchCount: 4,
		Series: map[string]obs.QuantileSeries{
			acquireTicksSeries: {Final: obs.HistSummary{Count: 100, P99: 64}},
		},
	}
}

func TestGatePassesOnIdenticalRun(t *testing.T) {
	if v := gateViolations(refSummary(), refSummary(), 25); len(v) != 0 {
		t.Fatalf("identical run violated the gate: %v", v)
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	cur := refSummary()
	cur.MsgsPerMutatorOp = 2.2 // +10% < 25%
	cur.GCCopyWords = 11000    // +10%
	if v := gateViolations(cur, refSummary(), 25); len(v) != 0 {
		t.Fatalf("within-tolerance drift violated the gate: %v", v)
	}
}

func TestGatePassesOnImprovement(t *testing.T) {
	cur := refSummary()
	cur.MsgsPerMutatorOp = 1.0
	cur.GCCopyWords = 100
	cur.Series[acquireTicksSeries] = obs.QuantileSeries{Final: obs.HistSummary{Count: 100, P99: 16}}
	if v := gateViolations(cur, refSummary(), 25); len(v) != 0 {
		t.Fatalf("an improvement violated the gate: %v", v)
	}
}

func TestGateTripsOnSyntheticRegressions(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*obs.BenchSummary)
		metric string
	}{
		{"msgs-per-op", func(b *obs.BenchSummary) { b.MsgsPerMutatorOp = 3.0 }, "msgs-per-mutator-op"},
		{"gc-copy-volume", func(b *obs.BenchSummary) { b.GCCopyWords = 20000 }, "gc-copy-words"},
		{"acquire-p99", func(b *obs.BenchSummary) {
			b.Series[acquireTicksSeries] = obs.QuantileSeries{Final: obs.HistSummary{Count: 100, P99: 256}}
		}, "acquire-ticks-p99"},
		{"syncs-per-flip", func(b *obs.BenchSummary) { b.SyncsPerFlip = 8.0 }, "syncs-per-flip"},
		{"locality-ratio", func(b *obs.BenchSummary) { b.RemoteAccessRatio = 0.9 }, "remote-access-ratio"},
		{"owner-mismatches", func(b *obs.BenchSummary) { b.OwnerMismatchCount = 20 }, "owner-mismatch-count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := refSummary()
			tc.mutate(&cur)
			v := gateViolations(cur, refSummary(), 25)
			if len(v) != 1 {
				t.Fatalf("got %d violations, want exactly the injected one: %v", len(v), v)
			}
			if !strings.Contains(v[0], tc.metric) {
				t.Fatalf("violation %q does not name %q", v[0], tc.metric)
			}
		})
	}
}

func TestGateZeroReferenceMeansStayZero(t *testing.T) {
	ref := refSummary()
	ref.SyncsPerFlip = 0
	cur := refSummary()
	cur.SyncsPerFlip = 0.5
	v := gateViolations(cur, ref, 25)
	if len(v) != 1 || !strings.Contains(v[0], "syncs-per-flip") {
		t.Fatalf("a metric appearing over a zero reference must violate: %v", v)
	}
}
