package main

import (
	"fmt"
	"strings"

	"bmx/internal/obs"
)

// Span-tree analysis: `bmxstat -trace a.ndjson,b.ndjson,c.ndjson -spans`
// stitches the per-process captures into cross-process span trees and
// prints the per-op latency breakdown, the slowest acquires hop by hop,
// and the per-trace §4.4 verdict.

// spansJSON is the -json shape of the span report.
type spansJSON struct {
	Traces       int               `json:"traces"`
	Complete     int               `json:"complete"`
	CrossProcess int               `json:"cross_process"`
	Orphans      int               `json:"orphans"`
	Ops          []spanOpJSON      `json:"ops"`
	Slowest      []slowJSON        `json:"slowest_acquires,omitempty"`
	Violations   []traceFaultsJSON `json:"violations,omitempty"`
	ScionOnPath  int               `json:"scion_on_path"`
}

type spanOpJSON struct {
	Op    string `json:"op"`
	Count int    `json:"count"`
	Sum   int64  `json:"sum_ticks"`
	Self  int64  `json:"self_ticks"`
	P50   int64  `json:"p50"`
	P95   int64  `json:"p95"`
	P99   int64  `json:"p99"`
	Max   int64  `json:"max"`
}

type slowJSON struct {
	Trace   uint64    `json:"trace"`
	OID     string    `json:"oid"`
	Op      string    `json:"op"`
	Elapsed int64     `json:"elapsed"`
	Hops    []hopJSON `json:"hops"`
	Verdict string    `json:"verdict"`
	GCMsgs  []string  `json:"gc_messages,omitempty"`
}

type hopJSON struct {
	Depth   int    `json:"depth"`
	Op      string `json:"op"`
	Node    string `json:"node"`
	Elapsed int64  `json:"elapsed"`
	Self    int64  `json:"self"`
}

type traceFaultsJSON struct {
	Trace    uint64   `json:"trace"`
	Messages []string `json:"messages"`
}

func printSpans(evs []obs.Event, topN int, asJSON bool) {
	traces := obs.BuildSpanTraces(evs)
	if len(traces) == 0 {
		fail(fmt.Errorf("no span events in this trace (was the run traced, and on a build with span instrumentation?)"))
	}
	doc := spansJSON{Traces: len(traces)}
	for _, t := range traces {
		if t.Complete() {
			doc.Complete++
		}
		if t.CrossProcess() {
			doc.CrossProcess++
		}
		doc.Orphans += len(t.Orphans)
		v := t.Verdict()
		doc.ScionOnPath += len(v.ScionMessages)
		if !v.Clean() {
			f := traceFaultsJSON{Trace: t.ID}
			for _, e := range v.GCMessages {
				f.Messages = append(f.Messages, e.String())
			}
			doc.Violations = append(doc.Violations, f)
		}
	}
	for _, row := range obs.SpanOpsOf(traces) {
		s := row.Ticks.Summary()
		doc.Ops = append(doc.Ops, spanOpJSON{
			Op: row.Op.String(), Count: row.Count, Sum: s.Sum, Self: row.Self,
			P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max,
		})
	}
	for _, sa := range obs.SlowestAcquires(traces, topN) {
		v := sa.Trace.Verdict()
		sj := slowJSON{
			Trace: sa.Trace.ID, OID: sa.Span.OID.String(),
			Op: sa.Span.Op.String(), Elapsed: sa.Span.Elapsed,
			Verdict: verdictWord(v),
		}
		var walkHops func(s *obs.Span, depth int)
		walkHops = func(s *obs.Span, depth int) {
			sj.Hops = append(sj.Hops, hopJSON{
				Depth: depth, Op: s.Op.String(), Node: s.Node.String(),
				Elapsed: s.Elapsed, Self: s.SelfTicks(),
			})
			for _, c := range s.Children {
				walkHops(c, depth+1)
			}
		}
		walkHops(sa.Span, 0)
		for _, e := range v.GCMessages {
			sj.GCMsgs = append(sj.GCMsgs, e.String())
		}
		doc.Slowest = append(doc.Slowest, sj)
	}

	if asJSON {
		emitJSON(doc)
		return
	}

	fmt.Printf("-- span traces --\n")
	fmt.Printf("%d traces (%d complete, %d cross-process), %d orphaned spans\n",
		doc.Traces, doc.Complete, doc.CrossProcess, doc.Orphans)
	fmt.Println()

	fmt.Println("-- latency by operation (flamegraph totals, slowest first) --")
	fmt.Printf("%-20s %7s %10s %10s %7s %7s %7s %8s\n",
		"op", "count", "sum", "self", "p50", "p95", "p99", "max")
	for _, o := range doc.Ops {
		fmt.Printf("%-20s %7d %10d %10d %7d %7d %7d %8d\n",
			o.Op, o.Count, o.Sum, o.Self, o.P50, o.P95, o.P99, o.Max)
	}
	fmt.Println()

	fmt.Printf("-- slowest %d acquires, hop by hop --\n", topN)
	for _, s := range doc.Slowest {
		fmt.Printf("trace %x  %s %s  %d ticks  §4.4 %s\n", s.Trace, s.Op, s.OID, s.Elapsed, s.Verdict)
		for _, h := range s.Hops {
			fmt.Printf("  %s%-20s node=%-4s %6d ticks (self %d)\n",
				strings.Repeat("  ", h.Depth), h.Op, h.Node, h.Elapsed, h.Self)
		}
		for _, m := range s.GCMsgs {
			fmt.Printf("  !! GC message on critical path: %s\n", m)
		}
	}
	fmt.Println()

	fmt.Println("-- §4.4 verdict (per trace) --")
	fmt.Printf("%d/%d traces clean; %d sanctioned scion-messages on critical paths\n",
		doc.Traces-len(doc.Violations), doc.Traces, doc.ScionOnPath)
	for _, f := range doc.Violations {
		fmt.Printf("!! trace %x carries %d non-scion GC messages inside critical-path spans:\n", f.Trace, len(f.Messages))
		for _, m := range f.Messages {
			fmt.Printf("   %s\n", m)
		}
	}
	if len(doc.Violations) == 0 {
		fmt.Println("no trace carries a non-scion GC message inside its critical-path spans")
	}
}

func verdictWord(v obs.TraceVerdict) string {
	if v.Clean() {
		return "clean"
	}
	return fmt.Sprintf("VIOLATED (%d gc messages)", len(v.GCMessages))
}
