package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bmx/internal/obs"
)

// CI perf gate: `bmxstat -bench BENCH_6_flip.json -ref BENCH_REF.json
// -gate 25` compares a fresh benchmark envelope against the committed
// reference and exits non-zero when a gated metric regressed by more than
// the given percentage. `-make-ref` builds the reference file from a
// comma-separated list of envelopes, keyed by filename base.

// gateMetrics are the envelope fields the gate watches: the paper's
// headline costs. Latency quantiles come from the power-of-two histogram
// series, so they only move when latency moves across a bucket boundary —
// coarse, which is exactly what a drift gate wants.
const acquireTicksSeries = "dsm.acquire.ticks"

// refKey names an envelope inside BENCH_REF.json: the artifact's filename
// base, so the reference and the Makefile agree without a manifest.
func refKey(path string) string {
	return filepath.Base(strings.TrimSuffix(path, ","))
}

func readBenchRef(path string) map[string]obs.BenchSummary {
	r := open(path)
	defer r.Close()
	ref := map[string]obs.BenchSummary{}
	if err := json.NewDecoder(r).Decode(&ref); err != nil {
		fail(fmt.Errorf("%s: %v", path, err))
	}
	return ref
}

// makeRef merges the given benchmark envelopes into one reference document
// on stdout, keyed by filename base.
func makeRef(benchList string) {
	ref := map[string]obs.BenchSummary{}
	for _, p := range strings.Split(benchList, ",") {
		ref[refKey(p)] = readBench(p)
	}
	emitJSON(ref)
}

// gateViolations compares one current envelope against its reference and
// returns a human-readable line per violated metric. pct is the allowed
// upward drift in percent; improvements never violate.
func gateViolations(cur, ref obs.BenchSummary, pct float64) []string {
	var out []string
	worse := func(metric string, cur, ref float64) {
		if ref <= 0 {
			// A zero reference means the metric must stay zero: any
			// appearance is a regression no tolerance excuses (this is how
			// syncs-per-flip catches a group-commit discipline break).
			if cur > 0 {
				out = append(out, fmt.Sprintf("%s: %.2f appeared (reference is 0)", metric, cur))
			}
			return
		}
		drift := (cur - ref) / ref * 100
		if drift > pct {
			out = append(out, fmt.Sprintf("%s: %.2f vs reference %.2f (+%.1f%% > %.1f%% allowed)",
				metric, cur, ref, drift, pct))
		}
	}
	worse("msgs-per-mutator-op", cur.MsgsPerMutatorOp, ref.MsgsPerMutatorOp)
	worse("gc-copy-words", float64(cur.GCCopyWords), float64(ref.GCCopyWords))
	if cs, ok := cur.Series[acquireTicksSeries]; ok {
		if rs, rok := ref.Series[acquireTicksSeries]; rok {
			worse("acquire-ticks-p99", float64(cs.Final.P99), float64(rs.Final.P99))
		}
	}
	// Syncs-per-flip only exists on durable runs; NaN guards the
	// flip-less edge where the derivation divides by zero.
	if !math.IsNaN(cur.SyncsPerFlip) && !math.IsNaN(ref.SyncsPerFlip) {
		worse("syncs-per-flip", cur.SyncsPerFlip, ref.SyncsPerFlip)
	}
	// The locality pair: a placement or protocol change that makes acquires
	// leave their node more often, or strands more objects away from their
	// dominant writer, regresses the figure the heat table exists to watch.
	worse("remote-access-ratio", cur.RemoteAccessRatio, ref.RemoteAccessRatio)
	worse("owner-mismatch-count", float64(cur.OwnerMismatchCount), float64(ref.OwnerMismatchCount))
	return out
}

// runGate gates one envelope against the reference document and exits the
// process: 0 when every metric holds, 1 on any violation.
func runGate(benchPath, refPath string, pct float64) {
	cur := readBench(benchPath)
	ref := readBenchRef(refPath)
	key := refKey(benchPath)
	refSum, ok := ref[key]
	if !ok {
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fail(fmt.Errorf("no reference for %q in %s (has: %s)", key, refPath, strings.Join(keys, ", ")))
	}
	violations := gateViolations(cur, refSum, pct)
	if len(violations) == 0 {
		fmt.Printf("gate PASS %s: msgs/op %.2f, gc copy %d words, acquire p99 %d, within %.0f%% of reference\n",
			key, cur.MsgsPerMutatorOp, cur.GCCopyWords, cur.Series[acquireTicksSeries].Final.P99, pct)
		return
	}
	fmt.Printf("gate FAIL %s: %d metric(s) regressed beyond %.0f%%\n", key, len(violations), pct)
	for _, v := range violations {
		fmt.Printf("  %s\n", v)
	}
	os.Exit(1)
}
