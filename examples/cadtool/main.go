// Cadtool: the §1 design-database scenario end to end — an OO7-style CAD
// library whose modules live in separate bunches, edited through
// transactional sections (the §10 transactions extension), shared with a
// second workstation, and kept tidy by the bunch and group collectors.
package main

import (
	"fmt"
	"log"

	"bmx"
	"bmx/internal/trace"
)

func main() {
	cl := bmx.New(bmx.Config{Nodes: 2, SegWords: 512, Seed: 1})
	ws1, ws2 := cl.Node(0), cl.Node(1)

	lib := ws1.NewBunch()
	cfg := trace.OO7Config{
		Modules: 3, AssemblyFanout: 2, AssemblyLevels: 3,
		PartsPerBase: 2, AtomsPerPart: 4, Seed: 7,
	}
	db, err := trace.BuildOO7(ws1, lib, cfg)
	check(err)
	fmt.Printf("design library built: %d modules, %d objects, %d cross-module references\n",
		cfg.Modules, len(db.Objects), db.CrossRefs)

	// A second workstation opens module 1 (acquiring tokens as it walks).
	check(ws2.AcquireRead(db.Root))
	mod1, err := ws2.ReadRef(db.Root, 1)
	check(err)
	check(ws2.AcquireRead(mod1))
	if v, err := ws2.ReadWord(mod1, 1); err != nil || v != 1 {
		log.Fatalf("module id at ws2 = %d, %v", v, err)
	}
	fmt.Println("workstation 2 opened module 1 through the entry-consistency tokens")

	// A transactional engineering change at ws2: bump the module id field
	// atomically with a doc change, all buffered until commit.
	tx := ws2.Begin()
	check(tx.WriteWord(mod1, 1, 101))
	asm, err := tx.ReadRef(mod1, 0)
	check(err)
	check(tx.WriteWord(mod1, 1, 201)) // overwrite inside the same section
	if v, _ := tx.ReadWord(mod1, 1); v != 201 {
		log.Fatal("transaction lost read-your-writes")
	}
	_ = asm
	check(tx.Commit())
	if v, _ := ws2.ReadWord(mod1, 1); v != 201 {
		log.Fatal("commit not visible")
	}
	fmt.Println("transactional change committed (isolation + atomicity over the DSM)")

	// An aborted session leaves no trace.
	tx2 := ws2.Begin()
	check(tx2.WriteWord(mod1, 1, 999))
	tx2.Abort()
	if v, _ := ws2.ReadWord(mod1, 1); v != 201 {
		log.Fatal("aborted transaction leaked")
	}

	// Module 0 is retired from the library. Its subtree — thousands of
	// parts in a real system — becomes garbage, except parts other modules
	// still "use" through cross-references. No one frees anything by hand.
	check(ws1.AcquireWrite(db.Root))
	check(ws1.WriteRef(db.Root, 0, bmx.Nil))
	reclaimed := 0
	for round := 0; round < 5; round++ {
		st1 := ws1.CollectConnectedGroups()
		st2 := ws2.CollectConnectedGroups()
		reclaimed += st1.Dead + st2.Dead
		cl.Run(0)
	}
	fmt.Printf("module 0 retired: %d object replicas reclaimed across both workstations\n", reclaimed)

	// Survivors must be fully navigable.
	check(ws1.AcquireRead(db.Modules[2]))
	asm2, err := ws1.ReadRef(db.Modules[2], 0)
	check(err)
	if asm2.IsNil() {
		log.Fatal("surviving module lost its assembly tree")
	}
	st := cl.Stats()
	fmt.Printf("collector token acquires: %d, collector invalidations: %d (the paper's claims)\n",
		st.Get("dsm.acquire.r.gc")+st.Get("dsm.acquire.w.gc"),
		st.Get("dsm.invalidation.gc"))
	if reclaimed == 0 {
		log.Fatal("nothing reclaimed")
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
