// Webgraph: the paper's §1 motivation — an intricate, widely shared,
// web-like object graph ("exploratory tools similar to the World-Wide-Web")
// whose manual storage management would leak or dangle. Three nodes browse
// and edit a shared document graph; links churn; the distributed collector
// reclaims unreachable documents across nodes using only idempotent
// background tables, even with 20% message loss.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bmx"
)

const (
	docs      = 120
	outDegree = 3
	rounds    = 8
)

func main() {
	cl := bmx.New(bmx.Config{Nodes: 3, SegWords: 512, Seed: 42, LossRate: 0.2})
	home := cl.Node(0)
	b := home.NewBunch()

	// Build the site: documents with links, everything reachable from the
	// front page.
	rng := rand.New(rand.NewSource(7))
	var pages []bmx.Ref
	for i := 0; i < docs; i++ {
		p := home.MustAlloc(b, outDegree+1)
		check(home.WriteWord(p, outDegree, uint64(i))) // document id
		pages = append(pages, p)
	}
	front := pages[0]
	home.AddRoot(front)
	for i, p := range pages {
		for f := 0; f < outDegree; f++ {
			// Link mostly to earlier pages so everything hangs off the
			// front page.
			var tgt bmx.Ref
			if i == 0 {
				tgt = pages[1+rng.Intn(docs-1)]
			} else {
				tgt = pages[rng.Intn(i)]
			}
			check(home.WriteRef(p, f, tgt))
		}
	}
	// A spanning chain guarantees initial reachability of every page.
	for i := 1; i < docs; i++ {
		check(home.WriteRef(pages[i-1], outDegree-1, pages[i]))
	}

	// Every page starts bookmarked (a mutator root at the home node: the
	// site index). Two browsing nodes pull the whole site into their
	// caches.
	bookmarked := make([]bool, docs)
	for i, p := range pages {
		home.AddRoot(p)
		bookmarked[i] = true
	}
	for _, n := range []*bmx.Node{cl.Node(1), cl.Node(2)} {
		for _, p := range pages {
			check(n.AcquireRead(p))
		}
	}
	fmt.Printf("site built: %d documents shared on 3 nodes\n", docs)

	// Edit sessions: the editor (rotating node) rewrites links on
	// still-bookmarked pages; the home node drops bookmarks over time.
	// Unbookmarked pages survive only while links reach them — classic
	// web rot, and exactly the error-prone manual-management scenario of
	// §1 that the collector makes safe.
	for r := 0; r < rounds; r++ {
		editor := cl.Node(r % 3)
		for e := 0; e < 10; e++ {
			i := rng.Intn(docs)
			if !bookmarked[i] {
				continue // an editor only opens pages still in the index
			}
			p := pages[i]
			check(editor.AcquireWrite(p))
			// Mostly deletions, occasionally a re-link.
			f := rng.Intn(outDegree)
			if rng.Intn(10) < 7 {
				check(editor.WriteRef(p, f, bmx.Nil))
			} else {
				check(editor.WriteRef(p, f, pages[rng.Intn(docs)]))
			}
		}
		// The index shrinks: a few pages lose their bookmark each round.
		for d := 0; d < 8; d++ {
			i := 1 + rng.Intn(docs-1) // never drop the front page
			if bookmarked[i] {
				bookmarked[i] = false
				home.RemoveRoot(pages[i])
			}
		}
		for i := 0; i < 3; i++ {
			cl.Node(i).CollectBunch(b)
		}
		cl.Run(0)
	}
	// A few quiescent rounds let the reachability tables converge under
	// the lossy network.
	for r := 0; r < 4; r++ {
		for i := 0; i < 3; i++ {
			cl.Node(i).CollectBunch(b)
		}
		cl.Run(0)
	}

	// Survey the end state.
	present := 0
	for _, p := range pages {
		if _, ok := home.Collector().Heap().Canonical(p.OID); ok {
			present++
		}
	}
	st := cl.Stats()
	fmt.Printf("after %d edit rounds: %d/%d documents still reachable at the home node\n",
		rounds, present, docs)
	fmt.Printf("objects reclaimed across all replicas: %d\n", st.Get("core.gc.dead"))
	fmt.Printf("background GC messages lost to the network: %d (harmless: tables are idempotent)\n",
		st.Get("msg.lost"))
	fmt.Printf("collector token acquires: %d, collector invalidations: %d\n",
		st.Get("dsm.acquire.r.gc")+st.Get("dsm.acquire.w.gc"),
		st.Get("dsm.invalidation.gc"))

	// The front page must still browse correctly wherever it is read.
	check(cl.Node(2).AcquireRead(front))
	if v, err := cl.Node(2).ReadWord(front, outDegree); err != nil || v != 0 {
		log.Fatalf("front page corrupted: %d, %v", v, err)
	}
	fmt.Println("front page intact on every node")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
