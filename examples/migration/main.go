// Migration: the §7 story about distributed cycles of garbage. A dead cycle
// spans two bunches whose SSPs keep each other alive, so independent bunch
// collections can never reclaim it. The locality-based group collector
// reclaims cycles local to one site; a cycle created across sites becomes
// collectable once the involved bunches are mapped together ("if an
// application does not move bunches around the nodes there is a possibility
// that some dead cycles may not ever be removed").
package main

import (
	"fmt"
	"log"

	"bmx"
)

func main() {
	cl := bmx.New(bmx.Config{Nodes: 2, SegWords: 512, Seed: 1})
	n1, n2 := cl.Node(0), cl.Node(1)

	b1 := n1.NewBunch()
	b2 := n2.NewBunch()

	// A cross-bunch cycle: x (B1@N1) <-> y (B2@N2). Both references are
	// created at N1 (so both stubs live at N1), but the bunches live on
	// different sites. A control object must survive everything.
	x := n1.MustAlloc(b1, 1)
	y := n2.MustAlloc(b2, 1)
	control := n1.MustAlloc(b1, 1)
	n1.AddRoot(control)

	check(n1.AcquireWrite(y))   // pulls y's write token to N1
	check(n1.WriteRef(x, 0, y)) // stub at N1, scion-message to N2 (B2 unmapped here)
	check(n1.WriteRef(y, 0, x)) // stub at N1, scion local (B1 mapped here)
	fmt.Println("built a dead 2-cycle: x(B1@N1) <-> y(B2@N2), both edges created at N1")

	// Phase 1: bunch collections everywhere, repeatedly. The cycle is
	// "artificially held over by SSPs" — it must survive (that is the
	// correct, conservative behaviour of independent bunch collection).
	for round := 0; round < 4; round++ {
		n1.CollectBunch(b1)
		n2.CollectBunch(b2)
		cl.Run(0)
	}
	fmt.Printf("after 4 BGC rounds: cycle present at N1=%v, at N2=%v (BGCs cannot see it is dead)\n",
		present(n1, x), present(n2, y))

	// Phase 2: the GGC at N1 with only B1 in its group. The scion for x
	// originates in B2, which is outside the group, so it stays a root —
	// still conservative, still alive ("cycles with objects allocated in
	// bunches not currently mapped in memory" are not collected, §7).
	n1.CollectGroup([]bmx.BunchID{b1})
	cl.Run(0)
	fmt.Printf("after a B1-only GGC at N1: cycle still present at N1=%v (B2 is not in the group)\n",
		present(n1, x))

	// Phase 3: map B2 at N1 (the application "moves bunches around the
	// nodes"). Now both bunches — and both stubs — are local to N1's
	// group: the intra-group scions are no longer roots and the cycle is
	// provably dead. A few rounds let the deletion chain unwind at N2.
	check(n1.MapBunch(b2))
	for round := 0; round < 4; round++ {
		n1.CollectGroup(nil)
		n2.CollectGroup(nil)
		cl.Run(0)
	}

	fmt.Printf("after co-mapping + GGC: cycle present at N1=%v, at N2=%v\n",
		present(n1, x) || present(n1, y), present(n2, x) || present(n2, y))
	fmt.Printf("control object still alive: %v\n", present(n1, control))

	st := cl.Stats()
	fmt.Printf("collector token acquires: %d (the mutator's MapBunch/AcquireWrite are application traffic)\n",
		st.Get("dsm.acquire.r.gc")+st.Get("dsm.acquire.w.gc"))
	if present(n1, x) || present(n2, y) || !present(n1, control) {
		log.Fatal("unexpected final state")
	}
}

func present(n *bmx.Node, r bmx.Ref) bool {
	_, ok := n.Collector().Heap().Canonical(r.OID)
	return ok
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
