// Quickstart: two nodes share an object graph through entry-consistency
// tokens; the bunch garbage collector reclaims unreachable objects on each
// node independently without ever acquiring a token.
package main

import (
	"fmt"
	"log"

	"bmx"
)

func main() {
	cl := bmx.New(bmx.Config{Nodes: 2})
	n1, n2 := cl.Node(0), cl.Node(1)

	// Objects live in bunches: groups of segments in the 64-bit single
	// address space, the unit of independent collection.
	b := n1.NewBunch()

	// Allocate a two-field record and a payload object at N1. The
	// allocating node owns a fresh object and holds its write token.
	record := n1.MustAlloc(b, 2)
	payload := n1.MustAlloc(b, 1)
	n1.AddRoot(record) // a mutator stack reference

	check(n1.WriteWord(payload, 0, 42))
	check(n1.WriteRef(record, 0, payload)) // every write passes the write barrier

	// N2 reads the record: entry consistency requires acquiring a token
	// first; the grant ships a consistent copy plus the current addresses
	// of everything the record references (invariant 1 of the paper).
	check(n2.AcquireRead(record))
	got, err := n2.ReadRef(record, 0)
	check(err)
	check(n2.AcquireRead(got))
	v, err := n2.ReadWord(got, 0)
	check(err)
	fmt.Printf("N2 reads record.payload = %d\n", v)

	// Drop the payload reference: it becomes garbage.
	check(n1.AcquireWrite(record))
	check(n1.WriteRef(record, 0, bmx.Nil))

	// Each node collects its replica independently. The collector copies
	// only locally-owned live objects, merely scans the rest, and never
	// touches a token.
	st1 := n1.CollectBunch(b)
	st2 := n2.CollectBunch(b)
	cl.Run(0) // deliver the background reachability tables
	st2 = n2.CollectBunch(b)

	fmt.Printf("BGC at N1: %d live, %d dead, %d copied\n", st1.LiveStrong, st1.Dead, st1.Copied)
	fmt.Printf("BGC at N2: %d live, %d dead\n", st2.LiveStrong, st2.Dead)

	stats := cl.Stats()
	fmt.Printf("token acquires by the collector: %d (the paper's central claim)\n",
		stats.Get("dsm.acquire.r.gc")+stats.Get("dsm.acquire.w.gc"))
	fmt.Printf("GC bytes piggybacked on consistency messages: %d\n",
		stats.Get("bytes.piggyback"))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
