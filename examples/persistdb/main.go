// Persistdb: the paper's §1 design-database motivation with persistence by
// reachability. A node maintains a parts database (assemblies referencing
// components) whose segments are file-backed with RVM-style recoverable
// virtual memory (§8): committed transactions survive a crash, uncommitted
// ones vanish, and objects unreachable from the persistent root are never
// stored to disk — the collector reclaims them before checkpointing.
package main

import (
	"fmt"
	"log"

	"bmx"
)

func main() {
	cl := bmx.New(bmx.Config{Nodes: 1, SegWords: 512, WithDisk: true})
	db := cl.Node(0)
	b := db.NewBunch()

	// Schema: assembly = {component0, component1, revision};
	// component = {weight, supplier-id}.
	newComponent := func(weight, supplier uint64) bmx.Ref {
		c := db.MustAlloc(b, 2)
		check(db.WriteWord(c, 0, weight))
		check(db.WriteWord(c, 1, supplier))
		return c
	}
	newAssembly := func(c0, c1 bmx.Ref, rev uint64) bmx.Ref {
		a := db.MustAlloc(b, 3)
		check(db.WriteRef(a, 0, c0))
		check(db.WriteRef(a, 1, c1))
		check(db.WriteWord(a, 2, rev))
		return a
	}

	// The persistent root: a directory of assemblies.
	root := db.MustAlloc(b, 4)
	db.AddRoot(root)
	for i := 0; i < 4; i++ {
		asm := newAssembly(newComponent(10+uint64(i), 100), newComponent(20+uint64(i), 200), 1)
		check(db.WriteRef(root, i, asm))
	}
	fmt.Println("database built: 4 assemblies, 8 components")

	// Durable checkpoint: segments to their backing files, log truncated.
	check(db.Checkpoint(b))

	// A committed revision bump...
	asm0, err := db.ReadRef(root, 0)
	check(err)
	check(db.WriteWord(asm0, 2, 2))
	db.Sync()
	// ...and an in-flight edit that never commits.
	check(db.WriteWord(asm0, 2, 99))

	// Crash. Volatile state is gone; recovery replays the checkpoint plus
	// the committed log suffix.
	check(db.Crash(b))
	check(db.RecoverBunch(b))
	rev, err := db.ReadWord(asm0, 2)
	check(err)
	fmt.Printf("after crash+recovery: assembly revision = %d (committed 2 kept, uncommitted 99 lost)\n", rev)
	if rev != 2 {
		log.Fatal("recovery returned the wrong revision")
	}

	// Persistence by reachability: drop an assembly, collect, checkpoint.
	// The unreachable objects are reclaimed before they could be stored
	// ("objects that are no longer reachable from the persistent root
	// should not be stored on disk", §1).
	check(db.AcquireWrite(root))
	check(db.WriteRef(root, 3, bmx.Nil))
	st := db.CollectBunch(b)
	fmt.Printf("dropped one assembly: collector reclaimed %d objects (assembly + 2 components)\n", st.Dead)
	db.ReclaimFromSpace(b)
	check(db.Checkpoint(b))

	// Final verification: the remaining database survives another crash.
	check(db.Crash(b))
	check(db.RecoverBunch(b))
	alive := 0
	for i := 0; i < 3; i++ {
		asm, err := db.ReadRef(root, i)
		check(err)
		c0, err := db.ReadRef(asm, 0)
		check(err)
		w, err := db.ReadWord(c0, 0)
		check(err)
		if w >= 10 {
			alive++
		}
	}
	fmt.Printf("after second recovery: %d/3 assemblies fully navigable\n", alive)
	w, s, syncs := db.Disk().Stats()
	fmt.Printf("disk: %d bytes written, %d synced, %d syncs\n", w, s, syncs)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
