module bmx

go 1.22
