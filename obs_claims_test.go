package bmx_test

// Flight-recorder acceptance tests: the paper's structural claims asserted
// from the ordered event stream, not from counters. A counter says "the
// collector acquired zero tokens in total"; the stream says "no event of
// the forbidden shape occurred anywhere in the retained window" and hands
// back the offending events as evidence when one did — which is also what
// makes the positive controls below possible.

import (
	"bytes"
	"testing"

	"bmx"
	"bmx/internal/baseline"
	"bmx/internal/obs"
	"bmx/internal/trace"
)

// TestEventStreamProvesPaperClaims drives a full mixed mutator+GC run —
// allocation, sharing, cross-node mutation, churn, bunch collections, scion
// cleaning, background drains — with the flight recorder on, then asserts
// the two central claims from the events themselves:
//
//   - §5: the collector initiates no token acquire and no invalidation,
//     ever (probe: no dsm.acquire.start / dsm.invalidate of class gc);
//   - §4.4: GC information travels as piggyback on consistency messages,
//     adding no message to the application's critical path (probe: no
//     GC-class send/call carrying FlagCritical — except the write barrier's
//     scion-message, §3.2's one sanctioned genuine GC message, which must
//     itself be present and filtered by wire kind, proving the probe sees
//     through to real traffic rather than passing vacuously).
func TestEventStreamProvesPaperClaims(t *testing.T) {
	cl := bmx.New(bmx.Config{Nodes: 3, SegWords: 256, Seed: 11, SendLatency: 1, CallLatency: 1})
	cl.Observer().SetRingSize(1 << 16) // keep the whole run, not a window
	cl.EnableTracing()

	n0, n1 := cl.Node(0), cl.Node(1)
	b := n0.NewBunch()
	g, err := trace.BuildList(n0, b, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Share(g.Objects, n1, cl.Node(2)); err != nil {
		t.Fatal(err)
	}

	// An inter-bunch reference from a bunch mapped at N1 into b forces the
	// write barrier to construct an SSP with a remote scion host: the one
	// sanctioned GC-class message on the mutator's critical path.
	b2 := n1.NewBunch()
	src := n1.MustAlloc(b2, 2)
	n1.AddRoot(src)
	if err := n1.AcquireWrite(src); err != nil {
		t.Fatal(err)
	}
	if err := n1.AcquireRead(g.Objects[0]); err != nil {
		t.Fatal(err)
	}
	if err := n1.WriteRef(src, 0, g.Objects[0]); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 4; round++ {
		mutator := cl.Node(round % 3)
		if err := trace.MutateValues(mutator, g, 8, int64(100+round)); err != nil {
			t.Fatal(err)
		}
		if _, err := trace.Churn(n0, g, 0.05, int64(round)); err != nil {
			t.Fatal(err)
		}
		if round%2 == 0 {
			for i := 0; i < 3; i++ {
				cl.Node(i).CollectBunch(b)
			}
			n1.CollectBunch(b2)
			n0.ReclaimFromSpace(b)
		}
		cl.Run(0)
	}

	evs := cl.Observer().Events()
	if len(evs) == 0 {
		t.Fatal("flight recorder retained no events")
	}

	// Sanity: the stream must actually contain both sides of the mixed run,
	// or the claims below would hold vacuously.
	var sawGCPhase, sawCriticalApp bool
	for _, e := range evs {
		if e.Kind == obs.KGCStart {
			sawGCPhase = true
		}
		if e.Kind == obs.KCall && e.Class == obs.ClassApp && e.Critical() {
			sawCriticalApp = true
		}
	}
	if !sawGCPhase || !sawCriticalApp {
		t.Fatalf("stream misses one side of the mixed run: gc=%v criticalApp=%v", sawGCPhase, sawCriticalApp)
	}

	// §5: zero collector-initiated token acquires, zero collector-caused
	// invalidations — anywhere in the stream.
	if bad := obs.CollectorAcquires(evs); len(bad) != 0 {
		t.Fatalf("collector initiated %d token acquires; first: %v", len(bad), bad[0])
	}
	if bad := obs.CollectorInvalidations(evs); len(bad) != 0 {
		t.Fatalf("collector caused %d invalidations; first: %v", len(bad), bad[0])
	}

	// §4.4: every GC-class message on the critical path is a scion-message.
	crit := obs.CriticalGCMessages(evs)
	if bad := obs.NonScion(crit); len(bad) != 0 {
		t.Fatalf("%d non-piggybacked GC messages on the critical path; first: %v", len(bad), bad[0])
	}
	// ... and the sanctioned exception really occurred, so the probe is
	// proven to see GC-class critical traffic when it exists.
	if len(crit) == 0 {
		t.Fatal("expected at least one scion-message on the critical path (the §3.2 exception); the probe may be blind")
	}
	for _, e := range crit {
		if e.Msg != obs.MsgScion {
			t.Fatalf("critical GC message is not a scion-message: %v", e)
		}
	}
}

// TestEventStreamPositiveControl runs the §4.2 strawman — the baseline
// collector that acquires the write token of every live object — and
// asserts the same probes light up: collector-class acquire events appear
// in the stream, attributed to the GC. This is what separates "the claim
// holds" from "the probe never looks".
func TestEventStreamPositiveControl(t *testing.T) {
	cl := bmx.New(bmx.Config{Nodes: 2, SegWords: 256, Seed: 3, SendLatency: 1, CallLatency: 1})
	cl.Observer().SetRingSize(1 << 14)
	cl.EnableTracing()

	n0 := cl.Node(0)
	b := n0.NewBunch()
	g, err := trace.BuildList(n0, b, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Share(g.Objects, cl.Node(1)); err != nil {
		t.Fatal(err)
	}
	// The strawman acquires the write token of every live object before
	// collecting, invalidating N2's freshly shared read copies — exactly
	// the working-set disruption the BGC is designed out of.
	if _, err := baseline.TokenCollectBunch(n0, b); err != nil {
		t.Fatal(err)
	}

	evs := cl.Observer().Events()
	acq := obs.CollectorAcquires(evs)
	if len(acq) == 0 {
		t.Fatal("positive control: the token-acquiring baseline produced no gc-class acquire events")
	}
	for _, e := range acq {
		if e.Class != obs.ClassGC {
			t.Fatalf("baseline acquire not attributed to the collector: %v", e)
		}
	}
	if inv := obs.CollectorInvalidations(evs); len(inv) == 0 {
		t.Fatal("positive control: baseline write-token acquires should invalidate replicas")
	}
}

// TestTreeSeed5Succeeds runs what used to be the ROADMAP's known failure —
// `bmxd -nodes 3 -objects 80 -rounds 6 -workload tree -seed 5` died with
// "ownerPtr chain for O36 exceeded 10 hops" — and pins the fix. The root
// cause (diagnosed from the flight-recorder biography of O36): churn cut the
// object's parent link, every replica was legitimately reclaimed (the owner
// last), then background location manifests re-created unanchored ownerPtr
// routes among the non-owners; the driver's next write through its saved
// handle walked those stale edges in a loop until the hop bound fired. The
// fix is two-sided: the chain refuses to revisit a node (Via-aware routing;
// a cycle reads as a detour, exhaustion proves the object unowned), and the
// requester then faults the object back in (dsm.reestablish) — a handle
// kept by a mutator names the object in the persistent store for as long as
// the directory remembers it.
func TestTreeSeed5Succeeds(t *testing.T) {
	const (
		nodes   = 3
		objects = 80
		rounds  = 6
		seed    = 5
	)
	cl := bmx.New(bmx.Config{Nodes: nodes, SegWords: 512, Seed: seed, SendLatency: 1, CallLatency: 1})
	cl.EnableTracing()
	var dump bytes.Buffer
	cl.Observer().SetFatalSink(&dump)

	n0 := cl.Node(0)
	b := n0.NewBunch()
	depth := 1
	for (1<<(depth+1))-1 < objects {
		depth++
	}
	g, err := trace.BuildTree(n0, b, depth)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Share(g.Objects, cl.Node(1), cl.Node(2)); err != nil {
		t.Fatal(err)
	}

	// The exact bmxd driver loop (churn 0.2, gc-every 2, ggc-every 5,
	// reclaim on). The run is deterministic; it used to die in round 5.
	for r := 1; r <= rounds; r++ {
		mutator := cl.Node(r % nodes)
		if err := trace.MutateValues(mutator, g, 10, seed+int64(r)); err != nil {
			t.Fatalf("round %d mutate: %v", r, err)
		}
		if _, err := trace.Churn(n0, g, 0.2/float64(rounds), seed+int64(r)); err != nil {
			t.Fatalf("round %d churn: %v", r, err)
		}
		if r%2 == 0 {
			for i := 0; i < nodes; i++ {
				cl.Node(i).CollectBunch(b)
			}
			cl.Node(0).ReclaimFromSpace(b)
		}
		if r%5 == 0 {
			cl.Node(0).CollectGroup(nil)
		}
		cl.Run(0)
	}

	// The hop bound never fired, so nothing hit the fatal sink.
	if dump.Len() != 0 {
		t.Fatalf("flight recorder dumped a fatal:\n%.2000s", dump.String())
	}
	evs := cl.Observer().Events()
	for _, e := range evs {
		if e.Kind == obs.KMaxHops {
			t.Fatalf("hop bound fired: %v", e)
		}
	}
	// The failure mode was real and the recovery exercised: the run must
	// have walked into at least one stale routing cycle, proven the object
	// unowned, and faulted it back in.
	reest := 0
	for _, e := range evs {
		if e.Kind == obs.KReestablish {
			reest++
		}
	}
	if reest == 0 {
		t.Fatal("run exercised no reestablish; the repro may have gone stale")
	}
	if got := cl.Stats().Get("dsm.reestablished"); got == 0 {
		t.Fatal("dsm.reestablished counter not bumped")
	}

	// The O36 biography must tell the story end to end: grants, owned
	// reclaim (global death), then a reestablish — and no unbounded hop
	// trail (a cycle is cut at the first revisit, so a trail can never
	// exceed the cluster size).
	trail := obs.HopTrail(evs, 36)
	if len(trail) > nodes {
		t.Fatalf("O36 hop trail longer than the cluster: %v", trail)
	}
	if cyc := obs.CycleIn(trail); len(cyc) != 0 {
		t.Fatalf("repeating cycle survives in the O36 hop trail: %v", trail)
	}
}
