package bmx_test

// Flight-recorder acceptance tests: the paper's structural claims asserted
// from the ordered event stream, not from counters. A counter says "the
// collector acquired zero tokens in total"; the stream says "no event of
// the forbidden shape occurred anywhere in the retained window" and hands
// back the offending events as evidence when one did — which is also what
// makes the positive controls below possible.

import (
	"bytes"
	"strings"
	"testing"

	"bmx"
	"bmx/internal/baseline"
	"bmx/internal/obs"
	"bmx/internal/trace"
)

// TestEventStreamProvesPaperClaims drives a full mixed mutator+GC run —
// allocation, sharing, cross-node mutation, churn, bunch collections, scion
// cleaning, background drains — with the flight recorder on, then asserts
// the two central claims from the events themselves:
//
//   - §5: the collector initiates no token acquire and no invalidation,
//     ever (probe: no dsm.acquire.start / dsm.invalidate of class gc);
//   - §4.4: GC information travels as piggyback on consistency messages,
//     adding no message to the application's critical path (probe: no
//     GC-class send/call carrying FlagCritical — except the write barrier's
//     scion-message, §3.2's one sanctioned genuine GC message, which must
//     itself be present and filtered by wire kind, proving the probe sees
//     through to real traffic rather than passing vacuously).
func TestEventStreamProvesPaperClaims(t *testing.T) {
	cl := bmx.New(bmx.Config{Nodes: 3, SegWords: 256, Seed: 11, SendLatency: 1, CallLatency: 1})
	cl.Observer().SetRingSize(1 << 16) // keep the whole run, not a window
	cl.EnableTracing()

	n0, n1 := cl.Node(0), cl.Node(1)
	b := n0.NewBunch()
	g, err := trace.BuildList(n0, b, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Share(g.Objects, n1, cl.Node(2)); err != nil {
		t.Fatal(err)
	}

	// An inter-bunch reference from a bunch mapped at N1 into b forces the
	// write barrier to construct an SSP with a remote scion host: the one
	// sanctioned GC-class message on the mutator's critical path.
	b2 := n1.NewBunch()
	src := n1.MustAlloc(b2, 2)
	n1.AddRoot(src)
	if err := n1.AcquireWrite(src); err != nil {
		t.Fatal(err)
	}
	if err := n1.AcquireRead(g.Objects[0]); err != nil {
		t.Fatal(err)
	}
	if err := n1.WriteRef(src, 0, g.Objects[0]); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 4; round++ {
		mutator := cl.Node(round % 3)
		if err := trace.MutateValues(mutator, g, 8, int64(100+round)); err != nil {
			t.Fatal(err)
		}
		if _, err := trace.Churn(n0, g, 0.05, int64(round)); err != nil {
			t.Fatal(err)
		}
		if round%2 == 0 {
			for i := 0; i < 3; i++ {
				cl.Node(i).CollectBunch(b)
			}
			n1.CollectBunch(b2)
			n0.ReclaimFromSpace(b)
		}
		cl.Run(0)
	}

	evs := cl.Observer().Events()
	if len(evs) == 0 {
		t.Fatal("flight recorder retained no events")
	}

	// Sanity: the stream must actually contain both sides of the mixed run,
	// or the claims below would hold vacuously.
	var sawGCPhase, sawCriticalApp bool
	for _, e := range evs {
		if e.Kind == obs.KGCStart {
			sawGCPhase = true
		}
		if e.Kind == obs.KCall && e.Class == obs.ClassApp && e.Critical() {
			sawCriticalApp = true
		}
	}
	if !sawGCPhase || !sawCriticalApp {
		t.Fatalf("stream misses one side of the mixed run: gc=%v criticalApp=%v", sawGCPhase, sawCriticalApp)
	}

	// §5: zero collector-initiated token acquires, zero collector-caused
	// invalidations — anywhere in the stream.
	if bad := obs.CollectorAcquires(evs); len(bad) != 0 {
		t.Fatalf("collector initiated %d token acquires; first: %v", len(bad), bad[0])
	}
	if bad := obs.CollectorInvalidations(evs); len(bad) != 0 {
		t.Fatalf("collector caused %d invalidations; first: %v", len(bad), bad[0])
	}

	// §4.4: every GC-class message on the critical path is a scion-message.
	crit := obs.CriticalGCMessages(evs)
	if bad := obs.NonScion(crit); len(bad) != 0 {
		t.Fatalf("%d non-piggybacked GC messages on the critical path; first: %v", len(bad), bad[0])
	}
	// ... and the sanctioned exception really occurred, so the probe is
	// proven to see GC-class critical traffic when it exists.
	if len(crit) == 0 {
		t.Fatal("expected at least one scion-message on the critical path (the §3.2 exception); the probe may be blind")
	}
	for _, e := range crit {
		if e.Msg != obs.MsgScion {
			t.Fatalf("critical GC message is not a scion-message: %v", e)
		}
	}
}

// TestEventStreamPositiveControl runs the §4.2 strawman — the baseline
// collector that acquires the write token of every live object — and
// asserts the same probes light up: collector-class acquire events appear
// in the stream, attributed to the GC. This is what separates "the claim
// holds" from "the probe never looks".
func TestEventStreamPositiveControl(t *testing.T) {
	cl := bmx.New(bmx.Config{Nodes: 2, SegWords: 256, Seed: 3, SendLatency: 1, CallLatency: 1})
	cl.Observer().SetRingSize(1 << 14)
	cl.EnableTracing()

	n0 := cl.Node(0)
	b := n0.NewBunch()
	g, err := trace.BuildList(n0, b, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Share(g.Objects, cl.Node(1)); err != nil {
		t.Fatal(err)
	}
	// The strawman acquires the write token of every live object before
	// collecting, invalidating N2's freshly shared read copies — exactly
	// the working-set disruption the BGC is designed out of.
	if _, err := baseline.TokenCollectBunch(n0, b); err != nil {
		t.Fatal(err)
	}

	evs := cl.Observer().Events()
	acq := obs.CollectorAcquires(evs)
	if len(acq) == 0 {
		t.Fatal("positive control: the token-acquiring baseline produced no gc-class acquire events")
	}
	for _, e := range acq {
		if e.Class != obs.ClassGC {
			t.Fatalf("baseline acquire not attributed to the collector: %v", e)
		}
	}
	if inv := obs.CollectorInvalidations(evs); len(inv) == 0 {
		t.Fatal("positive control: baseline write-token acquires should invalidate replicas")
	}
}

// TestMaxHopsFlightDumpTreeSeed5 reproduces the ROADMAP's known routing
// pathology — `bmxd -nodes 3 -objects 80 -rounds 6 -workload tree -seed 5`
// fails with "ownerPtr chain for O36 exceeded 10 hops" — and pins the
// diagnostics this PR attaches to it: the error now names the traversed
// node sequence hop by hop, and the flight recorder dumps the recent event
// window (with the per-hop dsm.acquire.hop events) to the fatal sink.
func TestMaxHopsFlightDumpTreeSeed5(t *testing.T) {
	const (
		nodes   = 3
		objects = 80
		rounds  = 6
		seed    = 5
	)
	cl := bmx.New(bmx.Config{Nodes: nodes, SegWords: 512, Seed: seed, SendLatency: 1, CallLatency: 1})
	cl.EnableTracing()
	var dump bytes.Buffer
	cl.Observer().SetFatalSink(&dump)

	n0 := cl.Node(0)
	b := n0.NewBunch()
	depth := 1
	for (1<<(depth+1))-1 < objects {
		depth++
	}
	g, err := trace.BuildTree(n0, b, depth)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Share(g.Objects, cl.Node(1), cl.Node(2)); err != nil {
		t.Fatal(err)
	}

	// The exact bmxd driver loop (churn 0.2, gc-every 2, ggc-every 5,
	// reclaim on). The repro is deterministic, so the failure must appear
	// during these rounds; if it ever stops reproducing, the ROADMAP's
	// known-failure entry is stale and this test should be retired with it.
	var failure error
	for r := 1; r <= rounds && failure == nil; r++ {
		mutator := cl.Node(r % nodes)
		if err := trace.MutateValues(mutator, g, 10, seed+int64(r)); err != nil {
			failure = err
			break
		}
		if _, err := trace.Churn(n0, g, 0.2/float64(rounds), seed+int64(r)); err != nil {
			failure = err
			break
		}
		if r%2 == 0 {
			for i := 0; i < nodes; i++ {
				cl.Node(i).CollectBunch(b)
			}
			cl.Node(0).ReclaimFromSpace(b)
		}
		if r%5 == 0 {
			cl.Node(0).CollectGroup(nil)
		}
		cl.Run(0)
	}
	if failure == nil {
		t.Fatal("the ROADMAP repro did not fail; known-failure entry may be stale")
	}
	msg := failure.Error()
	if !strings.Contains(msg, "exceeded 10 hops") {
		t.Fatalf("unexpected failure (want the maxHops overflow): %v", failure)
	}
	if !strings.Contains(msg, "O36") {
		t.Fatalf("failure concerns a different object than the ROADMAP's O36: %v", failure)
	}
	// The enriched error names the traversed sequence...
	if !strings.Contains(msg, "path N") || !strings.Contains(msg, " -> ") {
		t.Fatalf("error does not spell out the traversed node sequence: %v", failure)
	}
	// ...and the flight recorder dumped the window with the per-hop events.
	out := dump.String()
	if !strings.Contains(out, "flight recorder: fatal at") {
		t.Fatalf("no flight-recorder dump on the fatal path:\n%.2000s", out)
	}
	if !strings.Contains(out, "dsm.acquire.hop") {
		t.Fatalf("flight dump misses the per-hop events:\n%.2000s", out)
	}

	// The hop trail reconstructed from the stream must show the loop the
	// error names: a repeating node sequence at the tail.
	trail := obs.HopTrail(cl.Observer().Events(), 36)
	if len(trail) < 4 {
		t.Fatalf("hop trail for O36 too short: %v", trail)
	}
	if cyc := obs.CycleIn(trail); len(cyc) == 0 {
		t.Fatalf("no repeating cycle in the O36 hop trail: %v", trail)
	}
}
